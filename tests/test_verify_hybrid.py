"""Tests for the hybrid-TM (mixed-history) verify extension.

The same three layers of confidence as ``test_verify_fuzzer``, now over
histories where hardware and software (STM) transactions interleave:

* bounded fixed-seed hybrid fuzz runs must come back green, and must
  demonstrably exercise both commit paths (a sweep whose software side
  never runs proves nothing about mixed histories);
* *mutation testing*: with ``REPRO_STM_TEST_BUG=1`` the STM skips its
  read-set validation, and the fuzzer must catch the resulting lost
  updates within a bounded number of cases — the strongest evidence the
  mixed-history oracles have teeth;
* the lock-era case stream stays byte-identical (the hybrid generator
  branch consumes no RNG draws unless asked for stm), so every archived
  corpus case and pinned seed keeps meaning what it meant.
"""

from __future__ import annotations

import copy

import pytest

from repro.errors import ConfigurationError
from repro.verify import (
    case_from_json,
    case_to_json,
    check_outcome,
    fuzz,
    generate_case,
    run_case,
    validate_case,
)
from repro.verify.dsl import (
    SHARED_BASE,
    private_base,
    sabort_code,
    static_footprint_sw,
    tabort_code,
    tracked_addresses,
)

HYBRID_FUZZ_SEEDS = (0, 1, 2)
HYBRID_FUZZ_CASES = 12


def _hybrid_block(bid, fate="commit", hw_fault=True, ops=None,
                  max_retries=1, **overrides):
    block = {
        "id": bid,
        "mode": "hybrid",
        "fate": fate,
        "fault": None,
        "pifc": 0,
        "nest": None,
        "hw_fault": hw_fault,
        "max_retries": max_retries,
        "ntstg_slot": None,
        "fault_token": 0,
        "canary": None,
        "ops": ops if ops is not None else [["add", SHARED_BASE, 3]],
    }
    block.update(overrides)
    return block


def _hw_block(bid, ops):
    return {
        "id": bid,
        "mode": "tbegin",
        "fate": "commit",
        "fault": None,
        "pifc": 0,
        "nest": None,
        "ntstg_slot": None,
        "fault_token": 0,
        "canary": None,
        "ops": ops,
    }


def _mixed_case(block0=None, jitter=0):
    """One hybrid block racing one hardware block on a shared var."""
    return {
        "schema": "repro.verify/1",
        "n_cpus": 2,
        "pool": [SHARED_BASE],
        "init": [[SHARED_BASE, 10]],
        "schedule_seed": 1,
        "jitter": jitter,
        "speculation": False,
        "max_cycles": 3_000_000,
        "fallback_mode": "stm",
        "programs": [
            [["tx", block0 if block0 is not None else _hybrid_block(0)]],
            [["tx", _hw_block(1, [["add", SHARED_BASE, 5]])]],
        ],
    }


class TestHybridFuzzRun:
    @pytest.mark.parametrize("seed", HYBRID_FUZZ_SEEDS)
    def test_fixed_seed_hybrid_sweep_is_green(self, seed):
        report = fuzz(seed=seed, n_cases=HYBRID_FUZZ_CASES, shrink=False,
                      fallback_mode="stm")
        assert report.cases_run == HYBRID_FUZZ_CASES
        assert report.ok, [f.violations for f in report.failures]

    def test_sweep_exercises_both_commit_paths(self):
        # The green sweep above is only meaningful if software
        # transactions actually run: the first few seeds must together
        # produce hardware commits, software commits AND software
        # aborts in the one transaction log.
        kinds = set()
        for seed in range(8):
            outcome = run_case(generate_case(seed, "stm"))
            kinds.update(e[1] for e in outcome.result.tx_log["entries"])
            if {"commit", "sw_commit", "sw_abort"} <= kinds:
                break
        assert {"commit", "sw_commit", "sw_abort"} <= kinds


class TestStmMutation:
    """Satellite: the mixed-history oracles must catch a broken STM."""

    def test_skipped_validation_is_caught_within_bound(self, monkeypatch):
        monkeypatch.setenv("REPRO_STM_TEST_BUG", "1")
        report = fuzz(seed=0, n_cases=40, shrink=False, max_failures=1,
                      fallback_mode="stm")
        assert report.failures, (
            "fuzzer missed the skip-validation mutation in 40 cases"
        )
        # The lost update surfaces as a serializability violation.
        assert any("final state" in v or "commit" in v
                   for v in report.failures[0].violations)

    def test_mutation_does_not_affect_lock_mode(self, monkeypatch):
        # The classic (lock-era) case stream never enters the STM, so
        # the mutation flag must be inert there.
        monkeypatch.setenv("REPRO_STM_TEST_BUG", "1")
        report = fuzz(seed=0, n_cases=5, shrink=False)
        assert report.ok, [f.violations for f in report.failures]


class TestHybridGenerator:
    def test_lock_mode_stream_is_unchanged(self):
        for seed in (0, 3, 17):
            case = generate_case(seed)
            assert case == generate_case(seed, "lock")
            assert "fallback_mode" not in case
            assert all(e[1]["mode"] != "hybrid"
                       for p in case["programs"] for e in p
                       if e[0] == "tx")

    def test_stm_cases_pin_mode_and_contain_hybrid_blocks(self):
        for seed in range(10):
            case = generate_case(seed, "stm")
            assert case["fallback_mode"] == "stm"
            assert any(e[1]["mode"] == "hybrid"
                       for p in case["programs"] for e in p
                       if e[0] == "tx")

    def test_hybrid_cases_are_deterministic(self):
        assert generate_case(1234, "stm") == generate_case(1234, "stm")

    def test_hybrid_cases_round_trip_through_json(self):
        for seed in (0, 1, 9):
            case = generate_case(seed, "stm")
            assert case_from_json(case_to_json(case)) == case

    def test_hybrid_run_case_is_deterministic(self):
        case = generate_case(5, "stm")
        a, b = run_case(case), run_case(copy.deepcopy(case))
        assert a.result.tx_log == b.result.tx_log
        for addr in sorted(tracked_addresses(case)):
            assert (a.machine.memory.read_int(addr, 8)
                    == b.machine.memory.read_int(addr, 8))


class TestHybridValidation:
    def test_hybrid_block_requires_stm_case_pin(self):
        case = _mixed_case()
        del case["fallback_mode"]
        with pytest.raises(ConfigurationError):
            validate_case(case)

    def test_unknown_fallback_mode_rejected(self):
        case = _mixed_case()
        case["fallback_mode"] = "optimistic"
        with pytest.raises(ConfigurationError):
            validate_case(case)

    def test_doomed_hybrid_requires_hw_fault(self):
        case = _mixed_case(_hybrid_block(0, fate="doomed", hw_fault=False))
        with pytest.raises(ConfigurationError):
            validate_case(case)

    def test_max_retries_bounds_enforced(self):
        for bad in (0, 7):
            case = _mixed_case(_hybrid_block(0, max_retries=bad))
            with pytest.raises(ConfigurationError):
                validate_case(case)

    def test_hybrid_blocks_cannot_nest(self):
        case = _mixed_case(_hybrid_block(0, nest=[0, 1]))
        with pytest.raises(ConfigurationError):
            validate_case(case)

    def test_abort_codes_are_disjoint_per_block(self):
        # Attribution is per-block (keyed by the TBEGIN/SBEGIN address),
        # so a block's hardware and software fault codes must differ —
        # and both must stay transient (even) and fit an immediate.
        for bid in range(1000):
            assert tabort_code(bid) != sabort_code(bid)
            assert tabort_code(bid) % 2 == 0
            assert sabort_code(bid) % 2 == 0
            assert sabort_code(bid) < 1 << 15


class TestHybridOracleSensitivity:
    """The mixed-history oracles must fire when their property breaks."""

    def _sw_committed_outcome(self):
        # hw_fault=True with fate=commit: the block can only commit
        # through the STM, so the log deterministically has a sw_commit.
        case = _mixed_case()
        outcome = run_case(case)
        assert not check_outcome(case, outcome)
        entries = outcome.result.tx_log["entries"]
        assert any(e[1] == "sw_commit" for e in entries)
        return case, outcome

    def test_dropped_sw_commit_is_detected(self):
        case, outcome = self._sw_committed_outcome()
        entries = outcome.result.tx_log["entries"]
        index = next(i for i, e in enumerate(entries)
                     if e[1] == "sw_commit")
        del entries[index]
        violations = check_outcome(case, outcome)
        assert any("committed 0 times, expected 1" in v
                   for v in violations)

    def test_unknown_sbegin_address_is_detected(self):
        case, outcome = self._sw_committed_outcome()
        entry = next(e for e in outcome.result.tx_log["entries"]
                     if e[1] == "sw_commit")
        entry[2] = 0xDEAD00
        violations = check_outcome(case, outcome)
        assert any("unknown SBEGIN" in v for v in violations)

    def test_tampered_sw_write_set_is_detected(self):
        case, outcome = self._sw_committed_outcome()
        entry = next(e for e in outcome.result.tx_log["entries"]
                     if e[1] == "sw_commit")
        entry[7] = entry[7][:-1]
        violations = check_outcome(case, outcome)
        assert any("software-committed write lines" in v
                   for v in violations)

    def test_forged_doomed_sw_commit_is_detected(self):
        case = _mixed_case(_hybrid_block(
            0, fate="doomed", hw_fault=True,
            canary=private_base(0) + 0x800, fault_token=9,
        ))
        outcome = run_case(case)
        assert not check_outcome(case, outcome)
        sbegin_ia = next(iter(outcome.lowered[0].blocks_by_sbegin))
        outcome.result.tx_log["entries"].append(
            [0, "sw_commit", sbegin_ia, 0, 0, False, [], []]
        )
        violations = check_outcome(case, outcome)
        assert any("doomed hybrid block 0 committed in software" in v
                   for v in violations)

    def test_leaked_sw_canary_is_detected(self):
        # The canary is only ever stored inside software attempts that
        # always SABORT; pre-seeding it simulates a redo-log leak.
        canary = private_base(0) + 0x800
        case = _mixed_case(_hybrid_block(
            0, fate="abort_once", hw_fault=True,
            canary=canary, fault_token=9,
        ))
        case["init"].append([canary, 999])
        outcome = run_case(case)
        violations = check_outcome(case, outcome)
        assert any("abort invisibility" in v for v in violations)

    def test_sw_footprint_helper_matches_semantics(self):
        # ``add`` is a software read-modify-write; ``ntstg`` bypasses
        # the STM entirely. Both differ from the hardware helper.
        block = _hybrid_block(0, ops=[
            ["add", SHARED_BASE, 1],
            ["ntstg", private_base(0), 5],
        ])
        reads, writes = static_footprint_sw(block, 256)
        assert SHARED_BASE in reads and SHARED_BASE in writes
        assert private_base(0) & ~0xFF not in reads
        assert private_base(0) & ~0xFF not in writes


class TestHybridCli:
    def test_cli_hybrid_green_run(self, capsys):
        from repro.verify.__main__ import main
        assert main(["--cases", "4", "--seed", "0",
                     "--fallback-mode", "stm", "--quiet"]) == 0
        assert "passed" in capsys.readouterr().out
