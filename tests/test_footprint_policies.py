"""Pluggable footprint policies: spec parsing, per-policy capacity
semantics, nesting/aliasing edge cases, and the fabric drain-wake guard.

Policy-sensitive harnesses pin ``footprint_policy`` explicitly so every
test keeps measuring what it names when the suite runs under a
``REPRO_FOOTPRINT_POLICY`` override (the CI matrix does exactly that).
"""

import dataclasses

import pytest

from conftest import EngineHarness, small_params

from repro.core.abort import AbortCode
from repro.core.footprint import (
    ENV_VAR,
    BoundedSetPolicy,
    NoLruExtensionPolicy,
    PowerSpillPolicy,
    Zec12Policy,
    make_policy,
    resolve_policy_spec,
)
from repro.errors import ConfigurationError, TransactionAbortSignal
from repro.mem.fabric import CoherenceFabric
from repro.mem.xi import WATCH_BLOCK_MASK, Xi, XiResponse, XiType
from repro.params import CacheGeometry, ZEC12
from repro.sim.machine import Machine


def _tiny_l1_harness(footprint_policy: str,
                     lru_extension: bool = True) -> EngineHarness:
    """2x2 L1 (4 lines) over a 4x4 L2 (16 lines), policy pinned."""
    params = dataclasses.replace(
        small_params(n_cpus=1, lru_extension=lru_extension,
                     footprint_policy=footprint_policy),
        l1=CacheGeometry(ways=2, rows=2),
        l2=CacheGeometry(ways=4, rows=4),
    )
    return EngineHarness(params=params, n_cpus=1)


class TestSpecResolution:
    def test_default_is_zec12(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_policy_spec(ZEC12) == "zec12"
        policy = make_policy(ZEC12)
        assert isinstance(policy, Zec12Policy)
        assert policy.lru_extension is True

    def test_zec12_honours_lru_extension_param(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        policy = make_policy(small_params(lru_extension=False))
        assert isinstance(policy, Zec12Policy)
        assert policy.lru_extension is False

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "power-spill:8")
        assert resolve_policy_spec(ZEC12) == "power-spill:8"
        policy = make_policy(ZEC12)
        assert isinstance(policy, PowerSpillPolicy)
        assert policy.capacity == 8

    def test_explicit_params_beat_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "bounded")
        params = small_params(footprint_policy="zec12")
        assert isinstance(make_policy(params), Zec12Policy)

    def test_machine_reports_resolved_policy(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert Machine(small_params()).footprint_policy == "zec12"
        machine = Machine(small_params(footprint_policy="bounded:32,8"))
        assert machine.footprint_policy == "bounded:32,8"

    def test_spec_arguments(self):
        spill = make_policy(small_params(footprint_policy="power-spill:128"))
        assert spill.capacity == 128
        bounded = make_policy(small_params(footprint_policy="bounded:32,8"))
        assert bounded.max_read_lines == 32
        assert bounded.max_write_lines == 8
        assert isinstance(
            make_policy(small_params(footprint_policy="no-lru-extension")),
            NoLruExtensionPolicy,
        )

    @pytest.mark.parametrize("spec", [
        "nonsense",
        "zec12:5",
        "no-lru-extension:1",
        "power-spill:many",
        "power-spill:0",
        "bounded:1,2,3",
        "bounded:0",
        "bounded:8,0",
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            make_policy(small_params(footprint_policy=spec))


class TestRowAliasing:
    """An XI to a *different* line aliasing a tracked L1 row: false
    positive under the imprecise zec12 extension, clean under the
    precise power-spill buffer."""

    def _evict_into_tracking(self, harness):
        harness.tbegin()
        # Lines 0, 2, 4 all map to row 0 of the 2-row L1: the third
        # load evicts one into the policy's overflow structure.
        for i in (0, 2, 4):
            harness.load(0, 0x100000 + i * 256)

    def test_zec12_aliased_row_false_positive(self):
        harness = _tiny_l1_harness("zec12")
        engine = harness.engine()
        self._evict_into_tracking(harness)
        assert engine.footprint.tracking_rows() >= 1
        foreign = 0x500000  # even line index -> row 0, never accessed
        response, _ = engine.receive_xi(Xi(XiType.READ_ONLY, foreign, 1, 0))
        assert response is XiResponse.ACCEPT
        assert engine.pending_abort is not None
        assert engine.pending_abort.code == AbortCode.FETCH_CONFLICT

    def test_power_spill_aliased_row_no_false_positive(self):
        harness = _tiny_l1_harness("power-spill")
        engine = harness.engine()
        self._evict_into_tracking(harness)
        assert engine.footprint.tracking_rows() >= 1  # precise spills
        foreign = 0x500000
        response, _ = engine.receive_xi(Xi(XiType.READ_ONLY, foreign, 1, 0))
        assert response is XiResponse.ACCEPT
        assert engine.pending_abort is None  # line-exact check missed
        harness.tend()
        assert engine.stats_tx_committed == 1

    def test_power_spill_true_conflict_still_aborts(self):
        """The spilled line itself stays conflict-checked (precise
        tracking must not *lose* the line, only sharpen the check)."""
        harness = _tiny_l1_harness("power-spill")
        engine = harness.engine()
        self._evict_into_tracking(harness)
        spilled = next(iter(engine.footprint._spill))
        response, _ = engine.receive_xi(Xi(XiType.READ_ONLY, spilled, 1, 0))
        assert response is XiResponse.ACCEPT
        assert engine.pending_abort is not None
        assert engine.pending_abort.code == AbortCode.FETCH_CONFLICT


class TestNestedTransactions:
    @pytest.mark.parametrize("policy", ["zec12", "power-spill"])
    def test_tracking_survives_nested_tbegin_tend(self, policy):
        """Flattened nesting: an inner TBEGIN/TEND pair must not reset
        the overflow tracking accumulated by the outer transaction."""
        harness = _tiny_l1_harness(policy)
        engine = harness.engine()
        harness.tbegin()
        for i in (0, 2, 4):  # force an L1 eviction into the tracker
            harness.load(0, 0x100000 + i * 256)
        rows_before = engine.footprint.tracking_rows()
        assert rows_before >= 1
        harness.tbegin()  # nested: depth 2, no state reset
        harness.load(0, 0x100000 + 6 * 256)
        assert harness.tend() == 1  # back to depth 1, still in tx
        assert engine.footprint.tracking_rows() >= rows_before
        harness.tend()
        assert engine.stats_tx_committed == 1

    def test_tracking_cleared_between_transactions(self):
        harness = _tiny_l1_harness("zec12")
        engine = harness.engine()
        harness.tbegin()
        for i in (0, 2, 4):
            harness.load(0, 0x100000 + i * 256)
        assert engine.footprint.tracking_rows() >= 1
        harness.tend()
        harness.tbegin()
        assert engine.footprint.tracking_rows() == 0
        harness.tend()


class TestStoreCacheExhaustion:
    """The 64-entry gathering store cache at its exact boundary."""

    @pytest.mark.parametrize("policy", ["zec12", "power-spill",
                                        "bounded:64,64"])
    def test_64_blocks_fit_65th_aborts(self, policy):
        harness = EngineHarness(
            params=small_params(footprint_policy=policy), n_cpus=1
        )
        harness.tbegin()
        base = 0x100000
        for i in range(64):  # 64 distinct 128-byte gathering blocks
            harness.store(0, base + i * 128, i + 1)
        assert harness.engine().pending_abort is None
        with pytest.raises(TransactionAbortSignal):
            harness.store(0, base + 64 * 128, 99)
        abort = harness.process_abort()
        assert abort.code == AbortCode.STORE_OVERFLOW

    def test_bounded_write_limit_beats_store_cache(self):
        """bounded:64,4 aborts at the 5th distinct *line* (cardinality),
        long before the 64-block store cache fills."""
        harness = EngineHarness(
            params=small_params(footprint_policy="bounded:64,4"), n_cpus=1
        )
        harness.tbegin()
        base = 0x100000
        for i in range(4):  # 4 distinct 256-byte lines
            harness.store(0, base + i * 256, i + 1)
        assert harness.engine().pending_abort is None
        with pytest.raises(TransactionAbortSignal):
            harness.store(0, base + 4 * 256, 99)
        abort = harness.process_abort()
        assert abort.code == AbortCode.STORE_OVERFLOW


class TestBoundedPolicy:
    def test_read_limit_exact_boundary(self):
        harness = EngineHarness(
            params=small_params(footprint_policy="bounded:8"), n_cpus=1
        )
        harness.tbegin()
        for i in range(8):
            harness.load(0, 0x100000 + i * 256)
        assert harness.engine().pending_abort is None
        with pytest.raises(TransactionAbortSignal):
            harness.load(0, 0x100000 + 8 * 256)
        abort = harness.process_abort()
        assert abort.code == AbortCode.FETCH_OVERFLOW
        assert abort.condition_code == 3

    def test_rereading_lines_is_free(self):
        harness = EngineHarness(
            params=small_params(footprint_policy="bounded:4"), n_cpus=1
        )
        harness.tbegin()
        for _ in range(5):  # 20 loads, 4 distinct lines
            for i in range(4):
                harness.load(0, 0x100000 + i * 256)
        harness.tend()
        assert harness.engine().stats_tx_committed == 1

    def test_l1_evictions_tolerated(self):
        """Cardinality tracking is cache-independent: 8 lines through a
        4-line L1 evict freely and still commit (they fit the L2)."""
        harness = _tiny_l1_harness("bounded:64,16")
        harness.tbegin()
        for i in range(8):
            harness.load(0, 0x100000 + i * 256)
        harness.tend()
        assert harness.engine().stats_tx_committed == 1


class TestPowerSpillPolicy:
    def test_spill_capacity_abort(self):
        harness = _tiny_l1_harness("power-spill:2")
        harness.tbegin()
        with pytest.raises(TransactionAbortSignal):
            for i in range(8):  # 4 evictions from the 4-line L1
                harness.load(0, 0x100000 + i * 256)
        abort = harness.process_abort()
        assert abort.code == AbortCode.FETCH_OVERFLOW

    def test_within_capacity_commits(self):
        harness = _tiny_l1_harness("power-spill:2")
        harness.tbegin()
        for i in range(5):  # 1 eviction <= capacity 2
            harness.load(0, 0x100000 + i * 256)
        harness.tend()
        assert harness.engine().stats_tx_committed == 1

    def test_l2_eviction_still_aborts(self):
        """Soundness floor: a line leaving the private L2 leaves the XI
        delivery scope, so even a roomy spill buffer must abort."""
        harness = _tiny_l1_harness("power-spill")  # capacity 256
        harness.tbegin()
        with pytest.raises(TransactionAbortSignal):
            for i in range(20):  # exceeds the 16-line L2
                harness.load(0, 0x100000 + i * 256)
        abort = harness.process_abort()
        assert abort.code == AbortCode.FETCH_OVERFLOW


class TestCapacityBench:
    def test_zec12_matches_fig5f_machinery(self, monkeypatch):
        """The generic capacity runner reproduces the Figure 5(f)
        numbers exactly for the two historical configurations."""
        monkeypatch.delenv(ENV_VAR, raising=False)
        from repro.bench.capacity import capacity_point
        from repro.bench.lru import footprint_abort_rate

        point = capacity_point("zec12", 300, trials=10)
        assert point.abort_rate == footprint_abort_rate(
            300, lru_extension=True, trials=10
        )
        ablation = capacity_point("no-lru-extension", 300, trials=10)
        assert ablation.abort_rate == footprint_abort_rate(
            300, lru_extension=False, trials=10
        )
        assert ablation.abort_rate > point.abort_rate

    def test_abort_causes_reconcile(self):
        from repro.bench.capacity import capacity_point

        trials = 10
        point = capacity_point("bounded:16", 32, trials=trials)
        assert point.abort_rate == 1.0
        assert sum(point.abort_causes.values()) == trials
        assert point.abort_causes == {"FETCH_OVERFLOW": trials}


class TestFuzzPerPolicy:
    @pytest.mark.parametrize("policy", ["zec12", "no-lru-extension",
                                        "power-spill", "bounded"])
    def test_oracles_hold_under_policy(self, policy):
        from repro.verify.fuzzer import fuzz

        report = fuzz(seed=0, n_cases=4, shrink=False,
                      footprint_policy=policy)
        assert report.ok, [f.violations for f in report.failures]


class TestWakeDrainedGuard:
    def _fabric_with_watch(self, block: int):
        fabric = CoherenceFabric(small_params(n_cpus=2))
        woken = []
        fabric.wake_sink = woken.append
        fabric.watches.add(1, line=block & ~0xFF, block=block)
        return fabric, woken

    def test_zero_length_run_wakes_nobody(self):
        # Unaligned address: without the guard the last-block underflow
        # lands back in addr's own block and spuriously wakes CPU 1.
        addr = 130
        fabric, woken = self._fabric_with_watch(addr & WATCH_BLOCK_MASK)
        fabric.wake_drained([(addr, b"")])
        assert woken == []
        # Address 0: the underflow would go negative outright.
        fabric.wake_drained([(0, b"")])
        assert woken == []

    def test_non_empty_run_still_wakes(self):
        addr = 130
        fabric, woken = self._fabric_with_watch(addr & WATCH_BLOCK_MASK)
        fabric.wake_drained([(addr, b"\x01")])
        assert woken == [1]
