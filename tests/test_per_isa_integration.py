"""PER at the ISA level: watch-points interacting with transactions."""

from repro.core.per import PerEventType
from repro.cpu.assembler import assemble
from repro.cpu.isa import (
    AGSI,
    AHI,
    HALT,
    JNZ,
    LHI,
    Mem,
    NOPR,
    STG,
    TBEGIN,
    TEND,
)
from repro.params import ZEC12
from repro.sim.machine import Machine

DATA = 0x10000


def machine_with(items):
    machine = Machine(ZEC12)
    cpu = machine.add_program(assemble([*items, HALT()]))
    return machine, cpu


def test_store_watchpoint_outside_transaction_interrupts():
    machine, cpu = machine_with([
        LHI(1, 7),
        STG(1, Mem(disp=DATA)),
    ])
    machine.engines[0].per.watch_storage(DATA, 256)
    machine.run()
    assert any(e.event_type is PerEventType.STORAGE_ALTERATION
               for e in machine.os.per_events)


def test_store_watchpoint_inside_transaction_aborts_without_suppression():
    """"Without event suppression, a transaction modifying memory in the
    monitored range always aborts"."""
    machine, cpu = machine_with([
        LHI(5, 0),
        TBEGIN(),
        JNZ("handler"),
        AGSI(Mem(disp=DATA), 1),
        TEND(),
        JNZ("done"),
        ("handler", LHI(5, 1)),
        ("done", NOPR()),
    ])
    machine.engines[0].per.watch_storage(DATA, 256)
    machine.run()
    assert cpu.regs.get_gr(5) == 1            # abort handler ran
    assert machine.memory.read_int(DATA, 8) == 0
    assert cpu.aborts
    assert cpu.aborts[0].interrupts_to_os     # PER is never filtered


def test_suppression_lets_transaction_commit():
    machine, cpu = machine_with([
        TBEGIN(),
        JNZ("out"),
        AGSI(Mem(disp=DATA), 1),
        TEND(),
        ("out", NOPR()),
    ])
    per = machine.engines[0].per
    per.watch_storage(DATA, 256)
    per.event_suppression = True
    machine.run()
    assert machine.engines[0].stats_tx_committed == 1
    assert not cpu.aborts
    assert not any(e.event_type is PerEventType.STORAGE_ALTERATION
                   for e in machine.os.per_events)


def test_tend_event_once_per_commit():
    machine, cpu = machine_with([
        LHI(9, 4),
        ("loop", TBEGIN()),
        JNZ("skip"),
        AGSI(Mem(disp=DATA), 1),
        TEND(),
        ("skip", AHI(9, -1)),
        JNZ("loop"),
    ])
    machine.engines[0].per.tend_event = True
    machine.run()
    tend_events = [e for e in machine.os.per_events
                   if e.event_type is PerEventType.TRANSACTION_END]
    assert len(tend_events) == machine.engines[0].stats_tx_committed == 4


def test_ifetch_watchpoint_fires_outside_transaction():
    machine, cpu = machine_with([LHI(1, 1), NOPR()])
    program_entry = cpu.program.entry
    machine.engines[0].per.watch_ifetch(program_entry, 2)
    machine.run()
    # The ifetch event is a program interruption; the OS records it.
    assert machine.os.interruptions or machine.os.per_events
