"""Unit tests for address arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.mem.address import (
    DOUBLEWORD,
    LINE_SIZE,
    OCTOWORD,
    PAGE_SIZE,
    doubleword_address,
    is_aligned,
    line_address,
    line_offset,
    lines_touched,
    octoword_address,
    octowords_touched,
    page_address,
)


def test_line_address_alignment():
    assert line_address(0) == 0
    assert line_address(255) == 0
    assert line_address(256) == 256
    assert line_address(511) == 256


def test_line_offset():
    assert line_offset(0) == 0
    assert line_offset(257) == 1
    assert line_offset(511) == 255


def test_octoword_address():
    assert octoword_address(0) == 0
    assert octoword_address(31) == 0
    assert octoword_address(32) == 32


def test_doubleword_address():
    assert doubleword_address(7) == 0
    assert doubleword_address(8) == 8


def test_page_address():
    assert page_address(PAGE_SIZE - 1) == 0
    assert page_address(PAGE_SIZE) == PAGE_SIZE


def test_is_aligned():
    assert is_aligned(0, 8)
    assert is_aligned(64, 32)
    assert not is_aligned(4, 8)


def test_lines_touched_single():
    assert lines_touched(0x100, 8) == (0x100 & ~0xFF,)


def test_lines_touched_crossing():
    lines = lines_touched(250, 16)
    assert lines == (0, 256)


def test_lines_touched_span():
    lines = lines_touched(0, 1024)
    assert lines == (0, 256, 512, 768)


def test_lines_touched_rejects_zero_length():
    with pytest.raises(ConfigurationError):
        lines_touched(0, 0)


def test_octowords_touched_single():
    assert octowords_touched(0, 8) == (0,)


def test_octowords_touched_crossing():
    assert octowords_touched(30, 4) == (0, 32)


def test_octowords_touched_rejects_zero_length():
    with pytest.raises(ConfigurationError):
        octowords_touched(0, 0)


@given(addr=st.integers(min_value=0, max_value=1 << 48),
       length=st.integers(min_value=1, max_value=4096))
def test_lines_touched_cover_access(addr, length):
    """Every byte of the access falls in exactly one reported line."""
    lines = lines_touched(addr, length)
    assert lines[0] == line_address(addr)
    assert lines[-1] == line_address(addr + length - 1)
    for first, second in zip(lines, lines[1:]):
        assert second - first == LINE_SIZE


@given(addr=st.integers(min_value=0, max_value=1 << 48),
       length=st.integers(min_value=1, max_value=512))
def test_octowords_touched_cover_access(addr, length):
    words = octowords_touched(addr, length)
    assert words[0] == octoword_address(addr)
    assert words[-1] == octoword_address(addr + length - 1)
    assert len(words) == (words[-1] - words[0]) // OCTOWORD + 1


@given(addr=st.integers(min_value=0, max_value=1 << 48))
def test_alignment_functions_idempotent(addr):
    assert line_address(line_address(addr)) == line_address(addr)
    assert octoword_address(octoword_address(addr)) == octoword_address(addr)
    assert doubleword_address(doubleword_address(addr)) == doubleword_address(addr)
