"""Interpreter tests: instruction semantics and abort handling at the
architected (ISA) level."""

import pytest

from repro.core.abort import AbortCode
from repro.core.tdb import read_tdb
from repro.cpu.isa import (
    AGR,
    AGSI,
    AHI,
    BRC,
    CIJ,
    CIJNL,
    CSG,
    DSG,
    ETND,
    HALT,
    J,
    JNZ,
    JO,
    JZ,
    LA,
    LDR,
    LG,
    LHI,
    LPSW,
    LR,
    LTG,
    Mem,
    NOPR,
    NTSTG,
    PPA,
    SAR,
    SGR,
    SLL,
    STG,
    TABORT,
    TBEGIN,
    TBEGINC,
    TEND,
)
from repro.params import ZEC12
from repro.sim.machine import Machine


def run(items, n_cpus=1, machine=None):
    from repro.cpu.assembler import assemble

    machine = machine or Machine(ZEC12)
    program = assemble([*items, HALT()])
    cpus = [machine.add_program(program) for _ in range(n_cpus)]
    result = machine.run()
    return machine, cpus[0] if n_cpus == 1 else cpus, result


DATA = 0x10000


class TestBasicInstructions:
    def test_register_moves_and_arithmetic(self):
        _, cpu, _ = run([
            LHI(1, 10),
            LR(2, 1),
            AHI(2, 5),
            AGR(2, 1),
            SGR(2, 1),
            SLL(1, 4),
        ])
        assert cpu.regs.get_gr(2) == 15
        assert cpu.regs.get_gr(1) == 160

    def test_negative_immediates_wrap_to_64_bits(self):
        _, cpu, _ = run([LHI(1, -1)])
        assert cpu.regs.get_gr(1) == (1 << 64) - 1
        assert cpu.regs.get_gr_signed(1) == -1

    def test_load_address_with_base_and_index(self):
        _, cpu, _ = run([
            LHI(2, 0x100),
            LHI(3, 0x20),
            LA(1, Mem(base=2, index=3, disp=4)),
        ])
        assert cpu.regs.get_gr(1) == 0x124

    def test_store_load_roundtrip(self):
        _, cpu, _ = run([
            LHI(1, 1234),
            STG(1, Mem(disp=DATA)),
            LG(2, Mem(disp=DATA)),
        ])
        assert cpu.regs.get_gr(2) == 1234

    def test_ltg_sets_condition_code(self):
        machine, cpu, _ = run([
            LHI(1, -5),
            STG(1, Mem(disp=DATA)),
            LTG(2, Mem(disp=DATA)),
        ])
        assert cpu.regs.psw.condition_code == 1  # negative
        machine2, cpu2, _ = run([LTG(2, Mem(disp=DATA))])
        assert cpu2.regs.psw.condition_code == 0  # zero

    def test_agsi_read_modify_write(self):
        machine, cpu, _ = run([
            AGSI(Mem(disp=DATA), 5),
            AGSI(Mem(disp=DATA), -2),
            LG(1, Mem(disp=DATA)),
        ])
        assert cpu.regs.get_gr(1) == 3
        assert cpu.regs.psw.condition_code == 2  # positive result

    def test_csg_success_and_failure(self):
        _, cpu, _ = run([
            LHI(1, 0),
            LHI(2, 7),
            CSG(1, 2, Mem(disp=DATA)),   # 0 -> 7, CC0
            LR(3, 1),
            LHI(1, 99),
            LHI(2, 8),
            CSG(1, 2, Mem(disp=DATA)),   # miscompare: GR1 = 7, CC1
        ])
        assert cpu.regs.psw.condition_code == 1
        assert cpu.regs.get_gr(1) == 7


class TestBranches:
    def test_unconditional_and_conditional(self):
        _, cpu, _ = run([
            LHI(1, 0),
            LHI(2, 3),
            ("loop", AHI(1, 1)),
            AHI(2, -1),
            JNZ("loop"),
        ])
        assert cpu.regs.get_gr(1) == 3

    def test_jz_taken_on_cc0(self):
        _, cpu, _ = run([
            LHI(1, 5),
            AHI(1, -5),        # result 0 -> CC0
            JZ("skip"),
            LHI(2, 99),
            ("skip", NOPR()),
        ])
        assert cpu.regs.get_gr(2) == 0

    def test_cij_comparison_masks(self):
        _, cpu, _ = run([
            LHI(1, 5),
            CIJNL(1, 5, "ge"),   # 5 >= 5: taken
            LHI(2, 1),
            ("ge", CIJ(1, 9, 4, "lt")),  # 5 < 9: taken (mask CC1)
            LHI(3, 1),
            ("lt", NOPR()),
        ])
        assert cpu.regs.get_gr(2) == 0
        assert cpu.regs.get_gr(3) == 0


class TestTransactions:
    def test_committed_transaction(self):
        machine, cpu, result = run([
            TBEGIN(),
            JNZ("out"),
            AGSI(Mem(disp=DATA), 1),
            TEND(),
            ("out", NOPR()),
        ])
        assert machine.memory.read_int(DATA, 8) == 1
        assert result.cpus[0].tx_committed == 1

    def test_tabort_resumes_after_tbegin_with_cc(self):
        machine, cpu, _ = run([
            LHI(5, 0),
            TBEGIN(),
            JNZ("handler"),
            AGSI(Mem(disp=DATA), 1),
            TABORT(256),          # transient: CC2
            TEND(),
            J("done"),
            ("handler", LR(5, 0)),  # records that we got here
            LHI(5, 1),
            ("done", NOPR()),
        ])
        assert cpu.regs.get_gr(5) == 1
        assert machine.memory.read_int(DATA, 8) == 0  # store discarded
        assert cpu.aborts[0].condition_code == 2

    def test_grsm_restores_selected_pairs_only(self):
        """Pairs named in the mask are restored; others keep their
        modified values ("modified state survives the abort")."""
        _, cpu, _ = run([
            LHI(4, 11),          # pair 2 (GR4/5): saved
            LHI(6, 22),          # pair 3 (GR6/7): NOT saved
            TBEGIN(grsm=0x20),   # bit 2 -> pair (4,5) only
            JNZ("out"),
            LHI(4, 99),
            LHI(6, 99),
            TABORT(257),
            TEND(),
            ("out", NOPR()),
        ])
        assert cpu.regs.get_gr(4) == 11   # restored
        assert cpu.regs.get_gr(6) == 99   # survived the abort

    def test_constrained_transaction_retries_at_tbeginc(self):
        """TBEGINC + diagnostic mode 1: aborts retry the TBEGINC itself
        and eventually succeed (no abort path needed)."""
        machine = Machine(ZEC12)
        machine_, cpu, result = run([
            TBEGINC(),
            AGSI(Mem(disp=DATA), 1),
            TEND(),
        ], machine=machine)
        assert machine.memory.read_int(DATA, 8) == 1

    def test_etnd_extracts_depth(self):
        _, cpu, _ = run([
            ETND(1),
            TBEGIN(),
            JNZ("out"),
            TBEGIN(),
            JNZ("out"),
            ETND(2),
            TEND(),
            TEND(),
            ("out", NOPR()),
        ])
        assert cpu.regs.get_gr(1) == 0
        assert cpu.regs.get_gr(2) == 2

    def test_ppa_consumes_time(self):
        machine, cpu, result = run([
            LHI(1, 5),
            PPA(1),
        ])
        assert result.cycles > ZEC12.costs.ppa_base

    def test_tend_outside_transaction_sets_cc2(self):
        _, cpu, _ = run([TEND()])
        assert cpu.regs.psw.condition_code == 2

    def test_ntstg_survives_abort(self):
        machine, cpu, _ = run([
            LHI(1, 0x77),
            TBEGIN(),
            JNZ("out"),
            NTSTG(1, Mem(disp=DATA)),
            STG(1, Mem(disp=DATA + 256)),
            TABORT(256),
            TEND(),
            ("out", NOPR()),
        ])
        assert machine.memory.read_int(DATA, 8) == 0x77
        assert machine.memory.read_int(DATA + 256, 8) == 0


class TestRestrictedInstructions:
    def test_privileged_instruction_aborts_with_code_11(self):
        _, cpu, _ = run([
            TBEGIN(),
            JNZ("out"),
            LPSW(Mem(disp=0x4000)),
            TEND(),
            ("out", NOPR()),
        ])
        assert cpu.aborts[0].code == AbortCode.RESTRICTED_INSTRUCTION
        assert cpu.regs.psw.condition_code == 3

    def test_lpsw_allowed_outside_transaction(self):
        _, cpu, _ = run([LPSW(Mem(disp=0x4000))])
        assert not cpu.aborts

    def test_fpr_modification_blocked_by_control(self):
        _, cpu, _ = run([
            TBEGIN(allow_fpr_modification=False),
            JNZ("out"),
            LDR(0, 1),
            TEND(),
            ("out", NOPR()),
        ])
        assert cpu.aborts[0].code == AbortCode.RESTRICTED_INSTRUCTION

    def test_fpr_modification_allowed_by_default(self):
        _, cpu, _ = run([
            TBEGIN(),
            JNZ("out"),
            LDR(0, 1),
            TEND(),
            ("out", NOPR()),
        ])
        assert not cpu.aborts

    def test_ar_modification_control(self):
        _, cpu, _ = run([
            LHI(1, 42),
            TBEGIN(allow_ar_modification=False),
            JNZ("out"),
            SAR(3, 1),
            TEND(),
            ("out", NOPR()),
        ])
        assert cpu.aborts[0].code == AbortCode.RESTRICTED_INSTRUCTION

    def test_effective_control_is_and_of_nest(self):
        _, cpu, _ = run([
            TBEGIN(allow_fpr_modification=True),
            JNZ("out"),
            TBEGIN(allow_fpr_modification=False),
            JNZ("out"),
            LDR(0, 1),      # blocked: inner control wins
            TEND(),
            TEND(),
            ("out", NOPR()),
        ])
        assert cpu.aborts


class TestFilteringAtIsaLevel:
    def test_divide_by_zero_filtered_with_pifc1(self):
        _, cpu, _ = run([
            LHI(1, 10),
            LHI(2, 0),
            LHI(5, 0),
            TBEGIN(pifc=1),
            JNZ("handler"),
            DSG(1, 2),
            TEND(),
            J("done"),
            ("handler", LHI(5, 1)),
            ("done", NOPR()),
        ])
        assert cpu.regs.get_gr(5) == 1
        assert cpu.aborts[0].code == AbortCode.PROGRAM_EXCEPTION_FILTERED
        assert cpu.regs.psw.condition_code in (0, 3)  # handler saw CC3

    def test_divide_by_zero_unfiltered_interrupts_os(self):
        machine, cpu, _ = run([
            LHI(1, 10),
            LHI(2, 0),
            TBEGIN(pifc=0),
            JNZ("handler"),
            DSG(1, 2),
            TEND(),
            ("handler", NOPR()),
        ])
        assert cpu.aborts[0].code == AbortCode.PROGRAM_INTERRUPTION
        assert len(machine.os.interruptions) == 1

    def test_page_fault_resolved_by_os_then_retry_succeeds(self):
        machine = Machine(ZEC12)
        machine.page_table.unmap(DATA)
        machine_, cpu, result = run([
            TBEGIN(),
            JNZ("retry"),       # after OS page-in, CC2: fall to retry
            AGSI(Mem(disp=DATA), 1),
            TEND(),
            J("done"),
            ("retry", J("again")),
            ("again", TBEGIN()),
            JNZ("done"),
            AGSI(Mem(disp=DATA), 1),
            TEND(),
            ("done", NOPR()),
        ], machine=machine)
        assert machine.memory.read_int(DATA, 8) == 1
        assert machine.page_table.paged_in


class TestTdbAtIsaLevel:
    def test_tdb_stored_on_abort_with_grs(self):
        tdb_addr = 0x8000
        machine, cpu, _ = run([
            LHI(7, 1234),
            TBEGIN(tdb=tdb_addr),
            JNZ("out"),
            TABORT(258),
            TEND(),
            ("out", NOPR()),
        ])
        view = read_tdb(machine.memory, tdb_addr)
        assert view.valid
        assert view.abort_code == 258
        assert view.general_registers[7] == 1234

    def test_no_tdb_without_address(self):
        machine, cpu, _ = run([
            TBEGIN(),
            JNZ("out"),
            TABORT(258),
            TEND(),
            ("out", NOPR()),
        ])
        assert machine.memory.read_int(0x8000, 8) == 0
