"""Error hierarchy and public-API surface tests."""

import pytest

import repro
from repro import errors


def test_exception_hierarchy():
    assert issubclass(errors.ConfigurationError, errors.SimulationError)
    assert issubclass(errors.AssemblyError, errors.SimulationError)
    assert issubclass(errors.MachineStateError, errors.SimulationError)
    assert issubclass(errors.ProtocolError, errors.SimulationError)
    # Control-flow signals are NOT user errors.
    assert not issubclass(errors.TransactionAbortSignal,
                          errors.SimulationError)
    assert not issubclass(errors.ProgramInterruptionSignal,
                          errors.SimulationError)
    assert issubclass(errors.TransactionAbortSignal, errors.ControlFlowSignal)


def test_signal_payloads():
    abort = object()
    signal = errors.TransactionAbortSignal(abort)
    assert signal.abort is abort
    interruption = object()
    signal2 = errors.ProgramInterruptionSignal(interruption)
    assert signal2.interruption is interruption
    signal3 = errors.ConstraintViolationSignal("too many octowords")
    assert signal3.reason == "too many octowords"


def test_top_level_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_subpackage_exports_resolve():
    import repro.bench
    import repro.core
    import repro.cpu
    import repro.htm
    import repro.mem
    import repro.sim
    import repro.sync
    import repro.workloads

    for module in (repro.bench, repro.core, repro.cpu, repro.htm, repro.mem,
                   repro.sim, repro.sync, repro.workloads):
        for name in module.__all__:
            assert getattr(module, name) is not None, (module.__name__, name)


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_public_items_have_docstrings():
    """Every public item exported at the top level is documented."""
    import inspect

    for name in repro.__all__:
        obj = getattr(repro, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"{name} lacks a docstring"
