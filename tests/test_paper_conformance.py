"""Conformance checklist: architected facts straight from the paper.

Each test quotes the paper (MICRO 2012) and asserts the corresponding
behaviour of the implementation — a living checklist that the
reproduction covers the architecture as published.
"""

from conftest import EngineHarness

import pytest

from repro.core.abort import AbortCode, condition_code_for
from repro.core.txstate import CONSTRAINED_CONTROLS
from repro.cpu.isa import (
    ETND,
    NTSTG,
    PPA,
    TABORT,
    TBEGIN,
    TBEGINC,
    TEND,
    Mem,
)
from repro.params import ZEC12


def test_six_new_instructions_plus_ppa():
    """"The Transactional Execution (TX) Facility provides 6 new
    instructions" — TBEGIN, TBEGINC, TEND, TABORT, ETND, NTSTG — plus the
    new PPA function."""
    for factory, args in [
        (TBEGIN, ()),
        (TBEGINC, ()),
        (TEND, ()),
        (TABORT, (256,)),
        (ETND, (1,)),
        (NTSTG, (1, Mem(disp=0))),
        (PPA, (1,)),
    ]:
        assert factory(*args).mnemonic


def test_maximum_nesting_depth_is_16():
    """Paper: "The maximum supported nesting depth is 16"."""
    assert ZEC12.tx.max_nesting_depth == 16


def test_flattened_nesting():
    """"If a transaction abort happens on a nested transaction, the
    entire nest of transactions is aborted (flattened nesting), the
    nesting depth is set to 0"."""
    harness = EngineHarness(n_cpus=1)
    from repro.errors import TransactionAbortSignal

    harness.tbegin()
    harness.tbegin()
    harness.tbegin()
    with pytest.raises(TransactionAbortSignal):
        harness.engine().tx_abort(256)
    harness.process_abort()
    assert harness.engine().tx.depth == 0


def test_ntstg_is_8_bytes():
    """"these 8-byte stores are also isolated ... but committed to memory
    even in the case of transaction abort"."""
    insn = NTSTG(1, Mem(disp=0))
    assert insn.mnemonic == "NTSTG"
    # Engine-level behaviour covered in test_engine_tx; here: the
    # alignment requirement (doubleword).
    harness = EngineHarness(n_cpus=1)
    from repro.errors import ProgramInterruptionSignal

    with pytest.raises(ProgramInterruptionSignal):
        harness.engine().ntstg(0x10001, 1)


def test_tabort_lsb_selects_transient_vs_permanent():
    """"The least significant bit of the abort code determines whether
    the condition code is set to 2 or 3"."""
    assert condition_code_for(256) == 2
    assert condition_code_for(257) == 3


def test_constrained_limits_match_section_2d():
    """"a maximum of 32 instructions, all instruction text within 256
    consecutive bytes ... a maximum of 4 aligned octowords"."""
    assert ZEC12.tx.constrained_max_instructions == 32
    assert ZEC12.tx.constrained_itext_bytes == 256
    assert ZEC12.tx.constrained_max_octowords == 4
    assert ZEC12.tx.octoword_bytes == 32


def test_tbeginc_controls_considered_zero():
    """"the FPR control and the program interruption filtering fields do
    not exist and the controls are considered to be zero"."""
    assert CONSTRAINED_CONTROLS.pifc == 0
    assert not CONSTRAINED_CONTROLS.allow_fpr_modification


def test_store_cache_is_64_by_128_bytes():
    """"The cache is a circular queue of 64 entries, each entry holding
    128 bytes of data with byte-precise valid bits"."""
    assert ZEC12.tx.store_cache_entries == 64
    assert ZEC12.tx.store_cache_entry_bytes == 128
    from repro.mem.storecache import BLOCK_SIZE

    assert BLOCK_SIZE == 128


def test_l1_geometry_64_rows_6_ways():
    """"the valid bits (64 rows x 6 ways) of the directory"."""
    assert ZEC12.l1.rows == 64
    assert ZEC12.l1.ways == 6


def test_l2_geometry_512_rows_8_ways():
    """"the L2 is 8-way associative and has 512 rows"."""
    assert ZEC12.l2.rows == 512
    assert ZEC12.l2.ways == 8


def test_l1_latency_4_cycles_l2_penalty_7():
    """"96KB ... 4 cycle use-latency, coupled to a private 1MB ...
    2nd-level data cache with 7 cycles use-latency penalty"."""
    assert ZEC12.latencies.l1_hit == 4
    assert ZEC12.latencies.l2_hit == ZEC12.latencies.l1_hit + 7


def test_tdb_is_256_bytes():
    """"The TDB is 256 bytes in length"."""
    from repro.core.tdb import TDB_SIZE

    assert TDB_SIZE == 256


def test_abort_code_names_match_architecture():
    assert AbortCode.FETCH_CONFLICT == 9
    assert AbortCode.STORE_CONFLICT == 10
    assert AbortCode.RESTRICTED_INSTRUCTION == 11
    assert AbortCode.NESTING_DEPTH_EXCEEDED == 13
    assert AbortCode.FETCH_OVERFLOW == 7
    assert AbortCode.STORE_OVERFLOW == 8


def test_tbegin_resumes_after_tbegin_tbeginc_at_tbeginc():
    """"the instruction address is set back directly to the TBEGINC
    instead to the instruction after" — covered behaviourally in
    test_interpreter; here we pin the abort-path contract."""
    harness = EngineHarness(n_cpus=1)
    from repro.errors import TransactionAbortSignal

    harness.tbegin(constrained=True, ia=0x2000)
    assert harness.engine().tx.tbegin_address == 0x2000
    assert harness.engine().tx.constrained
