"""Determinism regression tests for the parallel experiment runner.

The simulator derives every random stream from ``params.seed`` and the
CPU id, so a benchmark point must produce bit-identical results across
repeated runs, across worker processes, and through the on-disk cache.
These tests pin that property — the figure sweeps rely on it to fan
points out with :mod:`repro.bench.parallel`.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import UpdateExperiment, run_update_experiment, sweep
from repro.bench.parallel import (
    FootprintTask,
    ResultCache,
    code_version,
    parallel_sweep,
    result_from_payload,
    result_to_payload,
    run_tasks,
    task_key,
)
from repro.params import ZEC12
from repro.workloads.hashtable import HashtableExperiment
from repro.workloads.queue import QueueExperiment


def assert_identical(a, b):
    """Bit-identical SimResults: every architected field must match."""
    assert a.cycles == b.cycles
    assert a.aborted_early == b.aborted_early
    assert len(a.cpus) == len(b.cpus)
    for ca, cb in zip(a.cpus, b.cpus):
        assert (ca.cpu_id, ca.instructions, ca.tx_started, ca.tx_committed,
                ca.tx_aborted, ca.xi_rejects, ca.intervals) == (
            cb.cpu_id, cb.instructions, cb.tx_started, cb.tx_committed,
            cb.tx_aborted, cb.xi_rejects, cb.intervals)
    assert a.throughput == b.throughput


class TestRepeatDeterminism:
    def test_same_update_experiment_twice(self):
        experiment = UpdateExperiment("tbeginc", 4, 10, 4, iterations=8)
        assert_identical(run_update_experiment(experiment),
                         run_update_experiment(experiment))

    def test_contended_lock_experiment_twice(self):
        experiment = UpdateExperiment("coarse", 4, 10, 4, iterations=8)
        assert_identical(run_update_experiment(experiment),
                         run_update_experiment(experiment))


class TestSerialVsParallel:
    TASKS = [
        ("update", UpdateExperiment("coarse", 3, 10, 4, iterations=6)),
        ("update", UpdateExperiment("tbeginc", 4, 10, 4, iterations=6)),
        ("hashtable", HashtableExperiment(3, elide=True, operations=8)),
        ("queue", QueueExperiment(3, use_tx=True, operations=4)),
        ("footprint", FootprintTask(150, False, trials=4)),
    ]

    def test_parallel_matches_serial(self):
        serial = run_tasks(self.TASKS, workers=1)
        parallel = run_tasks(self.TASKS, workers=3)
        for s, p in zip(serial[:-1], parallel[:-1]):
            assert_identical(s, p)
        assert serial[-1] == parallel[-1]  # footprint abort rate

    def test_parallel_sweep_matches_figures_sweep(self):
        schemes, grid = ["coarse", "tbeginc"], (2, 4)
        reference = sweep(schemes, grid, 10, 4, iterations=6)
        for workers in (1, 4):
            assert parallel_sweep(schemes, grid, 10, 4, iterations=6,
                                  workers=workers) == reference


class TestCache:
    def test_cache_round_trip_is_identical(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        tasks = [("update", UpdateExperiment("tbegin", 2, 10, 1,
                                             iterations=6))]
        computed = run_tasks(tasks, cache=cache)
        cached = run_tasks(tasks, cache=cache)
        assert_identical(computed[0], cached[0])

    def test_cache_file_written_and_keyed_by_code_version(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        experiment = UpdateExperiment("tbegin", 2, 10, 1, iterations=6)
        run_tasks([("update", experiment)], cache=cache)
        key = task_key("update", experiment, ZEC12)
        assert cache.get(key) is not None
        assert len(code_version()) == 16
        # A different experiment must map to a different key.
        other = UpdateExperiment("tbegin", 2, 10, 1, iterations=7)
        assert task_key("update", other, ZEC12) != key

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        experiment = UpdateExperiment("tbegin", 2, 10, 1, iterations=6)
        key = task_key("update", experiment, ZEC12)
        cache.put(key, {"type": "scalar", "value": 0})
        (tmp_path / (key + ".json")).write_text("{ not json")
        [result] = run_tasks([("update", experiment)], cache=cache)
        assert_identical(result, run_update_experiment(experiment))


class TestPayloadRoundTrip:
    def test_sim_result_payload_round_trip(self):
        result = run_update_experiment(
            UpdateExperiment("tbegin", 2, 10, 1, iterations=5))
        restored = result_from_payload(result_to_payload(result))
        assert_identical(result, restored)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            run_tasks([("bogus", UpdateExperiment("tbegin", 2, 1, 1))])
