"""Tests for the ISA-level lock and transaction harnesses (Figures 1/3)."""

from repro.cpu.assembler import assemble
from repro.cpu.isa import AGSI, AHI, HALT, JNZ, LHI, Mem, NOPR, STG


def counted_loop(body, iterations, counter=9):
    """Wrap fragment ``body`` in a counted loop (labels stay unique)."""
    return [
        LHI(counter, iterations),
        "outer_loop",
        *body,
        AHI(counter, -1),
        JNZ("outer_loop"),
    ]
from repro.params import ZEC12
from repro.sim.machine import Machine
from repro.sync.retry import (
    LOCK_BUSY_ABORT_CODE,
    constrained_transaction,
    transaction_with_fallback,
)
from repro.sync.rwlock import (
    WRITER_BIT,
    reader_enter,
    reader_exit,
    writer_acquire,
    writer_release,
)
from repro.sync.spinlock import acquire_lock, release_lock

LOCK = Mem(disp=0x8000)
DATA = 0x10000


def run(items, n_cpus=1, setup=None):
    machine = Machine(ZEC12)
    if setup:
        setup(machine)
    program = assemble([*items, HALT()])
    cpus = [machine.add_program(program) for _ in range(n_cpus)]
    result = machine.run()
    return machine, cpus, result


class TestSpinlock:
    def test_acquire_sets_release_clears(self):
        machine, _, _ = run([
            *acquire_lock(LOCK, "t"),
            *release_lock(LOCK),
        ])
        machine.engines[0].quiesce()
        assert machine.memory.read_int(LOCK.disp, 8) == 0

    def test_mutual_exclusion_under_contention(self):
        body = [
            *acquire_lock(LOCK, "t"),
            AGSI(Mem(disp=DATA), 1),
            *release_lock(LOCK),
        ]
        machine, _, _ = run(counted_loop(body, 20), n_cpus=4)
        assert machine.memory.read_int(DATA, 8) == 80


class TestFigure1Harness:
    def test_transactional_path_commits(self):
        machine, cpus, result = run(
            transaction_with_fallback([AGSI(Mem(disp=DATA), 1)], LOCK, "h")
        )
        assert machine.memory.read_int(DATA, 8) == 1
        assert result.cpus[0].tx_committed == 1

    def test_busy_lock_taborts_and_falls_back(self):
        """With the lock held by someone else forever, the transaction
        TABORTs (lock busy), retries, and the abort handler waits on the
        lock — a second CPU releasing it lets the fallback/retry finish."""
        def hold_lock(machine):
            machine.memory.write_int(LOCK.disp, 0, 8)

        release_after = [
            LHI(1, 1),
            STG(1, LOCK),          # take the lock non-transactionally
            LHI(9, 40),
            ("spin", NOPR()),
            *[NOPR()] * 3,
            LHI(1, 0),
            STG(1, LOCK),          # release
            *transaction_with_fallback([AGSI(Mem(disp=DATA), 1)], LOCK, "h"),
        ]
        machine, cpus, _ = run(release_after)
        assert machine.memory.read_int(DATA, 8) == 1

    def test_concurrent_updates_are_atomic(self):
        body = transaction_with_fallback([AGSI(Mem(disp=DATA), 1)], LOCK, "h")
        machine, cpus, result = run(counted_loop(body, 15), n_cpus=4)
        assert machine.memory.read_int(DATA, 8) == 60

    def test_lock_busy_abort_code_is_transient(self):
        assert LOCK_BUSY_ABORT_CODE % 2 == 0


class TestFigure3Harness:
    def test_constrained_commits(self):
        machine, _, result = run(
            constrained_transaction([AGSI(Mem(disp=DATA), 1)])
        )
        assert machine.memory.read_int(DATA, 8) == 1
        assert result.cpus[0].tx_committed == 1

    def test_constrained_concurrent_atomicity(self):
        body = constrained_transaction([AGSI(Mem(disp=DATA), 1)])
        machine, _, _ = run(counted_loop(body, 15), n_cpus=4)
        assert machine.memory.read_int(DATA, 8) == 60


class TestRwLock:
    def test_reader_count_balanced(self):
        machine, _, _ = run([
            *reader_enter(LOCK, "r"),
            NOPR(),
            *reader_exit(LOCK, "r"),
        ])
        machine.engines[0].quiesce()
        assert machine.memory.read_int(LOCK.disp, 8) == 0

    def test_concurrent_readers_balance(self):
        body = [
            *reader_enter(LOCK, "r"),
            *reader_exit(LOCK, "r"),
        ]
        machine, _, _ = run(counted_loop(body, 10), n_cpus=4)
        assert machine.memory.read_int(LOCK.disp, 8) == 0

    def test_writer_excludes_writers(self):
        body = [
            *writer_acquire(LOCK, "w"),
            AGSI(Mem(disp=DATA), 1),
            *writer_release(LOCK),
        ]
        machine, _, _ = run(counted_loop(body, 10), n_cpus=4)
        assert machine.memory.read_int(DATA, 8) == 40
        assert machine.memory.read_int(LOCK.disp, 8) == 0

    def test_writer_bit_above_reader_counts(self):
        assert WRITER_BIT > 1 << 20


class TestRwLockEdges:
    """Writer/reader interplay the throughput tests never reach."""

    def test_writer_waits_for_readers_to_drain(self):
        # Two in-flight readers are preset in the lock word; the writer
        # CPU must spin until the helper CPU has exited both.
        def preset_readers(machine):
            machine.memory.write_int(LOCK.disp, 2, 8)

        writer = [
            *writer_acquire(LOCK, "w"),
            AGSI(Mem(disp=DATA), 1),
            *writer_release(LOCK),
        ]
        exits = [
            *reader_exit(LOCK, "x1"),
            *reader_exit(LOCK, "x2"),
        ]
        machine = Machine(ZEC12)
        preset_readers(machine)
        programs = [assemble([*writer, HALT()]), assemble([*exits, HALT()])]
        for program in programs:
            machine.add_program(program)
        machine.run()
        machine.engines[0].quiesce()
        assert machine.memory.read_int(DATA, 8) == 1
        assert machine.memory.read_int(LOCK.disp, 8) == 0

    def test_reader_waits_for_writer_to_release(self):
        # A writer is active at start; the reader must observe the
        # release before its CAS-increment can succeed.
        def preset_writer(machine):
            machine.memory.write_int(LOCK.disp, WRITER_BIT, 8)

        reader = [
            *reader_enter(LOCK, "r"),
            AGSI(Mem(disp=DATA), 1),
            *reader_exit(LOCK, "r2"),
        ]
        machine = Machine(ZEC12)
        preset_writer(machine)
        machine.add_program(assemble([*reader, HALT()]))
        machine.add_program(assemble([*writer_release(LOCK), HALT()]))
        machine.run()
        machine.engines[0].quiesce()
        assert machine.memory.read_int(DATA, 8) == 1
        assert machine.memory.read_int(LOCK.disp, 8) == 0

    def test_mixed_readers_and_writers_stay_consistent(self):
        # Two writer CPUs and two reader CPUs churn concurrently; the
        # writers' increments must all land and the word must balance.
        writer_body = [
            *writer_acquire(LOCK, "w"),
            AGSI(Mem(disp=DATA), 1),
            *writer_release(LOCK),
        ]
        reader_body = [
            *reader_enter(LOCK, "r"),
            *reader_exit(LOCK, "r2"),
        ]
        machine = Machine(ZEC12)
        for body in (writer_body, writer_body, reader_body, reader_body):
            machine.add_program(assemble([*counted_loop(body, 8), HALT()]))
        result = machine.run()
        assert not result.aborted_early
        assert machine.memory.read_int(DATA, 8) == 16
        assert machine.memory.read_int(LOCK.disp, 8) == 0


class TestRetryExhaustion:
    """Figure 1's abort handler: bounded retries, then the lock path."""

    def test_transient_aborts_exhaust_into_fallback(self):
        from repro.cpu.isa import TABORT

        body = [TABORT(300)]  # even code: CC2, always retried
        harness = transaction_with_fallback(
            body, LOCK, "h", fallback_body=[AGSI(Mem(disp=DATA), 1)],
            max_retries=6,
        )
        machine, _, result = run(harness)
        assert machine.memory.read_int(DATA, 8) == 1  # fallback ran once
        assert result.cpus[0].tx_committed == 0
        assert result.cpus[0].tx_aborted == 6  # exactly max_retries tries

    def test_permanent_abort_skips_retries(self):
        from repro.cpu.isa import TABORT

        body = [TABORT(301)]  # odd code: CC3, no retry is worthwhile
        harness = transaction_with_fallback(
            body, LOCK, "h", fallback_body=[AGSI(Mem(disp=DATA), 1)],
            max_retries=6,
        )
        machine, _, result = run(harness)
        assert machine.memory.read_int(DATA, 8) == 1
        assert result.cpus[0].tx_aborted == 1

    def test_max_retries_is_honoured(self):
        from repro.cpu.isa import TABORT

        harness = transaction_with_fallback(
            [TABORT(300)], LOCK, "h",
            fallback_body=[AGSI(Mem(disp=DATA), 1)], max_retries=2,
        )
        machine, _, result = run(harness)
        assert machine.memory.read_int(DATA, 8) == 1
        assert result.cpus[0].tx_aborted == 2

    def test_exhausted_cpus_still_serialize_under_the_lock(self):
        from repro.cpu.isa import TABORT

        harness = transaction_with_fallback(
            [TABORT(300)], LOCK, "h",
            fallback_body=[AGSI(Mem(disp=DATA), 1)], max_retries=2,
        )
        machine, _, result = run(counted_loop(harness, 5), n_cpus=3)
        assert not result.aborted_early
        assert machine.memory.read_int(DATA, 8) == 15
        assert machine.memory.read_int(LOCK.disp, 8) == 0


class TestHangCounterExhaustion:
    """Retry exhaustion driven by *real* contention: XI stiff-arm
    escalation and conflict aborts, not injected TABORTs (those are
    :class:`TestRetryExhaustion`'s job)."""

    def test_conflict_aborts_exhaust_into_fallback(self):
        import dataclasses
        from collections import Counter

        from repro.cpu.isa import NOPR
        from repro.sim.metrics import MetricsRegistry

        data2, fb_counter = 0x10100, 0x18000
        # An aggressive hang-avoidance threshold: two rejected XIs
        # without forward progress abort the stiff-arming holder.
        params = dataclasses.replace(
            ZEC12, tx=dataclasses.replace(ZEC12.tx, xi_reject_threshold=2)
        )
        # A long window across two hot lines, so concurrent updaters
        # conflict for real; one retry only, so conflicts exhaust fast.
        body = [
            AGSI(Mem(disp=DATA), 1),
            *[NOPR()] * 6,
            AGSI(Mem(disp=data2), 1),
        ]
        harness = transaction_with_fallback(
            body, LOCK, "h",
            fallback_body=[
                AGSI(Mem(disp=fb_counter), 1),
                AGSI(Mem(disp=DATA), 1),
                AGSI(Mem(disp=data2), 1),
            ],
            max_retries=1,
        )
        machine = Machine(params)
        program = assemble([*counted_loop(harness, 10), HALT()])
        for _ in range(4):
            machine.add_program(program)
        registry = MetricsRegistry().attach(machine)
        result = machine.run()

        assert not result.aborted_early
        # Atomicity holds across the transactional and lock paths.
        assert machine.memory.read_int(DATA, 8) == 40
        assert machine.memory.read_int(data2, 8) == 40
        assert machine.memory.read_int(LOCK.disp, 8) == 0
        # The fallback demonstrably ran: conflicts, not TABORTs, pushed
        # CPUs past their retry budget.
        assert machine.memory.read_int(fb_counter, 8) > 0
        assert sum(c.xi_rejects for c in result.cpus) > 0
        causes: Counter = Counter()
        hang: Counter = Counter()
        for cpu in registry.cpus:
            causes.update(cpu.abort_causes)
            hang.update(cpu.hang_counter_at_abort)
        conflicts = causes["FETCH_CONFLICT"] + causes["STORE_CONFLICT"]
        assert conflicts > 0
        # At least one abort fired *at* the hang-avoidance threshold:
        # the hang counter, not a fault, ended that transaction.
        assert hang[params.tx.xi_reject_threshold] >= 1


class TestPpaBackoff:
    """The PPA delay policy behind the harness's inter-retry pacing."""

    def _assist(self, seed=7):
        import random

        from repro.core.ppa import PpaAssist

        return PpaAssist(ZEC12.latencies, random.Random(seed))

    def test_zero_count_means_no_delay(self):
        assert self._assist().delay_cycles(0) == 0
        assert self._assist().delay_cycles(-1) == 0

    def test_delay_is_bounded_and_grows_exponentially(self):
        assist = self._assist()
        unit = ZEC12.latencies.on_chip_intervention
        for count in range(1, 12):
            exponent = min(count, assist.MAX_EXPONENT)
            delay = assist.delay_cycles(count)
            assert unit <= delay <= unit * (1 << exponent)

    def test_ceiling_clamps_above_max_exponent(self):
        assist = self._assist()
        ceiling = (ZEC12.latencies.on_chip_intervention
                   << assist.MAX_EXPONENT)
        samples = [assist.delay_cycles(50) for _ in range(200)]
        assert max(samples) <= ceiling

    def test_seeded_delay_sequence_is_deterministic(self):
        counts = [1, 3, 2, 9, 1, 50, 4]
        a = [self._assist(seed=11).delay_cycles(c) for c in [counts[0]]]
        seq = lambda: [  # noqa: E731 — tiny local helper
            delay for assist in [self._assist(seed=11)]
            for delay in (assist.delay_cycles(c) for c in counts)
        ]
        assert seq() == seq()
        assert a[0] == seq()[0]
