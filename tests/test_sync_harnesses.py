"""Tests for the ISA-level lock and transaction harnesses (Figures 1/3)."""

from repro.cpu.assembler import assemble
from repro.cpu.isa import AGSI, AHI, HALT, JNZ, LHI, Mem, NOPR, STG


def counted_loop(body, iterations, counter=9):
    """Wrap fragment ``body`` in a counted loop (labels stay unique)."""
    return [
        LHI(counter, iterations),
        "outer_loop",
        *body,
        AHI(counter, -1),
        JNZ("outer_loop"),
    ]
from repro.params import ZEC12
from repro.sim.machine import Machine
from repro.sync.retry import (
    LOCK_BUSY_ABORT_CODE,
    constrained_transaction,
    transaction_with_fallback,
)
from repro.sync.rwlock import (
    WRITER_BIT,
    reader_enter,
    reader_exit,
    writer_acquire,
    writer_release,
)
from repro.sync.spinlock import acquire_lock, release_lock

LOCK = Mem(disp=0x8000)
DATA = 0x10000


def run(items, n_cpus=1, setup=None):
    machine = Machine(ZEC12)
    if setup:
        setup(machine)
    program = assemble([*items, HALT()])
    cpus = [machine.add_program(program) for _ in range(n_cpus)]
    result = machine.run()
    return machine, cpus, result


class TestSpinlock:
    def test_acquire_sets_release_clears(self):
        machine, _, _ = run([
            *acquire_lock(LOCK, "t"),
            *release_lock(LOCK),
        ])
        machine.engines[0].quiesce()
        assert machine.memory.read_int(LOCK.disp, 8) == 0

    def test_mutual_exclusion_under_contention(self):
        body = [
            *acquire_lock(LOCK, "t"),
            AGSI(Mem(disp=DATA), 1),
            *release_lock(LOCK),
        ]
        machine, _, _ = run(counted_loop(body, 20), n_cpus=4)
        assert machine.memory.read_int(DATA, 8) == 80


class TestFigure1Harness:
    def test_transactional_path_commits(self):
        machine, cpus, result = run(
            transaction_with_fallback([AGSI(Mem(disp=DATA), 1)], LOCK, "h")
        )
        assert machine.memory.read_int(DATA, 8) == 1
        assert result.cpus[0].tx_committed == 1

    def test_busy_lock_taborts_and_falls_back(self):
        """With the lock held by someone else forever, the transaction
        TABORTs (lock busy), retries, and the abort handler waits on the
        lock — a second CPU releasing it lets the fallback/retry finish."""
        def hold_lock(machine):
            machine.memory.write_int(LOCK.disp, 0, 8)

        release_after = [
            LHI(1, 1),
            STG(1, LOCK),          # take the lock non-transactionally
            LHI(9, 40),
            ("spin", NOPR()),
            *[NOPR()] * 3,
            LHI(1, 0),
            STG(1, LOCK),          # release
            *transaction_with_fallback([AGSI(Mem(disp=DATA), 1)], LOCK, "h"),
        ]
        machine, cpus, _ = run(release_after)
        assert machine.memory.read_int(DATA, 8) == 1

    def test_concurrent_updates_are_atomic(self):
        body = transaction_with_fallback([AGSI(Mem(disp=DATA), 1)], LOCK, "h")
        machine, cpus, result = run(counted_loop(body, 15), n_cpus=4)
        assert machine.memory.read_int(DATA, 8) == 60

    def test_lock_busy_abort_code_is_transient(self):
        assert LOCK_BUSY_ABORT_CODE % 2 == 0


class TestFigure3Harness:
    def test_constrained_commits(self):
        machine, _, result = run(
            constrained_transaction([AGSI(Mem(disp=DATA), 1)])
        )
        assert machine.memory.read_int(DATA, 8) == 1
        assert result.cpus[0].tx_committed == 1

    def test_constrained_concurrent_atomicity(self):
        body = constrained_transaction([AGSI(Mem(disp=DATA), 1)])
        machine, _, _ = run(counted_loop(body, 15), n_cpus=4)
        assert machine.memory.read_int(DATA, 8) == 60


class TestRwLock:
    def test_reader_count_balanced(self):
        machine, _, _ = run([
            *reader_enter(LOCK, "r"),
            NOPR(),
            *reader_exit(LOCK, "r"),
        ])
        machine.engines[0].quiesce()
        assert machine.memory.read_int(LOCK.disp, 8) == 0

    def test_concurrent_readers_balance(self):
        body = [
            *reader_enter(LOCK, "r"),
            *reader_exit(LOCK, "r"),
        ]
        machine, _, _ = run(counted_loop(body, 10), n_cpus=4)
        assert machine.memory.read_int(LOCK.disp, 8) == 0

    def test_writer_excludes_writers(self):
        body = [
            *writer_acquire(LOCK, "w"),
            AGSI(Mem(disp=DATA), 1),
            *writer_release(LOCK),
        ]
        machine, _, _ = run(counted_loop(body, 10), n_cpus=4)
        assert machine.memory.read_int(DATA, 8) == 40
        assert machine.memory.read_int(LOCK.disp, 8) == 0

    def test_writer_bit_above_reader_counts(self):
        assert WRITER_BIT > 1 << 20
