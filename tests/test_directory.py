"""Unit tests for the set-associative directory and cache geometry."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError, ProtocolError
from repro.mem.directory import SetAssociativeDirectory
from repro.mem.line import Ownership
from repro.params import CacheGeometry

GEO = CacheGeometry(ways=2, rows=4, line_size=256)


def lines_in_row(row: int, count: int):
    """Distinct line addresses all mapping to ``row``."""
    return [(row + i * GEO.rows) * GEO.line_size for i in range(count)]


def test_geometry_capacity():
    assert GEO.capacity == 2 * 4 * 256


def test_geometry_rejects_bad_values():
    with pytest.raises(ConfigurationError):
        CacheGeometry(ways=0, rows=4)
    with pytest.raises(ConfigurationError):
        CacheGeometry(ways=2, rows=3)  # not a power of two
    with pytest.raises(ConfigurationError):
        CacheGeometry(ways=2, rows=4, line_size=100)


def test_install_and_lookup():
    directory = SetAssociativeDirectory(GEO)
    entry = directory.install(0x100, Ownership.EXCLUSIVE)
    assert directory.lookup(0x100) is entry
    assert entry.state is Ownership.EXCLUSIVE
    assert directory.contains(0x100)
    assert not directory.contains(0x200)


def test_install_invalid_state_rejected():
    directory = SetAssociativeDirectory(GEO)
    with pytest.raises(ProtocolError):
        directory.install(0x100, Ownership.INVALID)


def test_reinstall_updates_state():
    directory = SetAssociativeDirectory(GEO)
    directory.install(0x100, Ownership.READ_ONLY)
    entry = directory.install(0x100, Ownership.EXCLUSIVE)
    assert entry.state is Ownership.EXCLUSIVE
    assert directory.occupancy() == 1


def test_lru_victim_is_least_recently_used():
    directory = SetAssociativeDirectory(GEO)
    a, b, c = lines_in_row(0, 3)
    directory.install(a, Ownership.READ_ONLY)
    directory.install(b, Ownership.READ_ONLY)
    directory.touch(directory.lookup(a))  # refresh a; b becomes LRU
    victims = []
    directory.install(c, Ownership.READ_ONLY, evict=lambda e: victims.append(e.line))
    assert victims == [b]
    assert directory.contains(a)
    assert directory.contains(c)
    assert not directory.contains(b)


def test_eviction_only_within_row():
    directory = SetAssociativeDirectory(GEO)
    row0 = lines_in_row(0, 2)
    row1 = lines_in_row(1, 1)
    for line in row0:
        directory.install(line, Ownership.READ_ONLY)
    victims = []
    directory.install(row1[0], Ownership.READ_ONLY,
                      evict=lambda e: victims.append(e.line))
    assert victims == []
    assert directory.occupancy() == 3


def test_remove():
    directory = SetAssociativeDirectory(GEO)
    directory.install(0x100, Ownership.READ_ONLY)
    removed = directory.remove(0x100)
    assert removed is not None and removed.line == 0x100
    assert directory.remove(0x100) is None


def test_demote():
    directory = SetAssociativeDirectory(GEO)
    directory.install(0x100, Ownership.EXCLUSIVE)
    directory.demote(0x100)
    assert directory.lookup(0x100).state is Ownership.READ_ONLY
    directory.demote(0x999)  # absent: no-op


def test_invalidate_where():
    directory = SetAssociativeDirectory(GEO)
    a, b = lines_in_row(0, 2)
    directory.install(a, Ownership.READ_ONLY).tx_dirty = True
    directory.install(b, Ownership.READ_ONLY)
    removed = directory.invalidate_where(lambda e: e.tx_dirty)
    assert [e.line for e in removed] == [a]
    assert not directory.contains(a)
    assert directory.contains(b)


def test_clear():
    directory = SetAssociativeDirectory(GEO)
    directory.install(0x100, Ownership.READ_ONLY)
    directory.clear()
    assert directory.occupancy() == 0


@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                max_size=200))
def test_occupancy_never_exceeds_capacity(line_indices):
    """Property: installs never exceed ways per row or total capacity."""
    directory = SetAssociativeDirectory(GEO)
    for index in line_indices:
        directory.install(index * GEO.line_size, Ownership.READ_ONLY)
        for row_index in range(GEO.rows):
            assert len(directory.row_entries(row_index)) <= GEO.ways
    assert directory.occupancy() <= GEO.ways * GEO.rows


@given(st.lists(st.integers(min_value=0, max_value=15), min_size=1,
                max_size=64))
def test_most_recently_installed_survives(line_indices):
    """Property: the most recently touched line is never the LRU victim."""
    directory = SetAssociativeDirectory(GEO)
    for index in line_indices:
        line = index * GEO.line_size
        directory.install(line, Ownership.READ_ONLY)
        assert directory.contains(line)
