"""Tests for the transactional data structures."""

import pytest

from repro.errors import ConfigurationError
from repro.htm.api import Ctx, HtmMachine
from repro.htm.datastructures import ConcurrentQueue, HashTable, Stack
from repro.params import ZEC12

BASE = 0x400000


def run_threads(*fns, n_cpus=None):
    machine = HtmMachine(ZEC12.with_cpus(n_cpus or max(len(fns), 1)))
    for fn in fns:
        machine.spawn(fn)
    result = machine.run()
    for engine in machine.engines:
        engine.quiesce()
    return machine, result


class TestHashTable:
    def test_put_get_roundtrip(self):
        table = HashTable(BASE, buckets=16)
        seen = {}

        def worker(ctx: Ctx):
            yield from table.put(ctx, 1, 100)
            yield from table.put(ctx, 2, 200)
            seen[1] = yield from table.get(ctx, 1)
            seen[2] = yield from table.get(ctx, 2)
            seen[3] = yield from table.get(ctx, 3)

        run_threads(worker)
        assert seen == {1: 100, 2: 200, 3: None}

    def test_update_existing_key(self):
        table = HashTable(BASE, buckets=16)
        seen = {}

        def worker(ctx: Ctx):
            yield from table.put(ctx, 5, 1)
            yield from table.put(ctx, 5, 2)
            seen["v"] = yield from table.get(ctx, 5)

        run_threads(worker)
        assert seen["v"] == 2

    def test_remove(self):
        table = HashTable(BASE, buckets=16)
        seen = {}

        def worker(ctx: Ctx):
            yield from table.put(ctx, 5, 1)
            seen["removed"] = yield from table.remove(ctx, 5)
            seen["after"] = yield from table.get(ctx, 5)
            seen["again"] = yield from table.remove(ctx, 5)

        run_threads(worker)
        assert seen == {"removed": True, "after": None, "again": False}

    def test_zero_key_rejected(self):
        table = HashTable(BASE, buckets=16)

        def worker(ctx: Ctx):
            with pytest.raises(ConfigurationError):
                yield from table.put(ctx, 0, 1)

        run_threads(worker)

    def test_bucket_overflow_reports_failure(self):
        table = HashTable(BASE, buckets=1)  # all keys share one bucket
        outcomes = []

        def worker(ctx: Ctx):
            for key in range(1, HashTable.SLOTS_PER_BUCKET + 2):
                outcomes.append((yield from table.put(ctx, key, key)))

        run_threads(worker)
        assert outcomes.count(True) == HashTable.SLOTS_PER_BUCKET
        assert outcomes[-1] is False

    def test_locked_and_elided_variants_agree(self):
        table = HashTable(BASE, buckets=16)
        seen = {}

        def worker(ctx: Ctx):
            yield from table.put(ctx, 7, 70, elide=False)
            seen["elided"] = yield from table.get(ctx, 7, elide=True)
            yield from table.put(ctx, 8, 80, elide=True)
            seen["locked"] = yield from table.get(ctx, 8, elide=False)

        run_threads(worker)
        assert seen == {"elided": 70, "locked": 80}

    def test_concurrent_distinct_keys(self):
        table = HashTable(BASE, buckets=64)
        missing = []

        def make_worker(tid):
            def worker(ctx: Ctx):
                keys = [tid * 100 + i + 1 for i in range(15)]
                for key in keys:
                    yield from table.put(ctx, key, key * 2)
                for key in keys:
                    value = yield from table.get(ctx, key)
                    if value != key * 2:
                        missing.append(key)
            return worker

        run_threads(*[make_worker(t) for t in range(4)])
        assert not missing


class TestConcurrentQueue:
    def test_fifo_single_thread(self):
        queue = ConcurrentQueue(BASE, capacity=64, max_threads=1)
        order = []

        def worker(ctx: Ctx):
            yield from queue.initialize(ctx)
            for i in (10, 20, 30):
                yield from queue.enqueue(ctx, i)
            while True:
                value = yield from queue.dequeue(ctx)
                if value is None:
                    break
                order.append(value)

        run_threads(worker)
        assert order == [10, 20, 30]

    def test_dequeue_empty_returns_none(self):
        queue = ConcurrentQueue(BASE, capacity=8, max_threads=1)
        seen = {}

        def worker(ctx: Ctx):
            yield from queue.initialize(ctx)
            seen["v"] = yield from queue.dequeue(ctx)

        run_threads(worker)
        assert seen["v"] is None

    @pytest.mark.parametrize("use_tx", [True, False])
    def test_concurrent_conservation(self, use_tx):
        """Every enqueued value is dequeued exactly once (no loss, no
        duplication) across threads."""
        n_threads, per_thread = 3, 12
        queue = ConcurrentQueue(BASE, capacity=128, max_threads=n_threads)
        popped = []

        def make_worker(tid):
            def worker(ctx: Ctx):
                if tid == 0:
                    yield from queue.initialize(ctx)
                else:
                    while (yield from ctx.load(queue.tail_addr)) == 0:
                        yield from ctx.delay(50)
                for i in range(per_thread):
                    yield from queue.enqueue(ctx, tid * 1000 + i + 1,
                                             use_tx=use_tx)
                for _ in range(per_thread):
                    while True:
                        value = yield from queue.dequeue(ctx, use_tx=use_tx)
                        if value is not None:
                            popped.append(value)
                            break
                        yield from ctx.delay(50)
            return worker

        run_threads(*[make_worker(t) for t in range(n_threads)])
        assert len(popped) == n_threads * per_thread
        assert len(set(popped)) == len(popped)

    def test_arena_exhaustion(self):
        queue = ConcurrentQueue(BASE, capacity=4, max_threads=1)

        def worker(ctx: Ctx):
            yield from queue.initialize(ctx)
            with pytest.raises(ConfigurationError):
                for i in range(10):
                    yield from queue.enqueue(ctx, i + 1)

        run_threads(worker)


class TestStack:
    def test_push_pop_lifo(self):
        stack = Stack(BASE)
        order = []

        def worker(ctx: Ctx):
            for i in (1, 2, 3):
                yield from stack.push(ctx, i)
            for _ in range(4):
                order.append((yield from stack.pop(ctx)))

        run_threads(worker)
        assert order == [3, 2, 1, None]

    def test_opacity_invariant_under_concurrency(self):
        """The paper's motivating example: count and top pointer always
        consistent — a popper never dereferences a NULL top while the
        count claims elements exist."""
        stack = Stack(BASE)
        inconsistencies = []

        def pusher(ctx: Ctx):
            for i in range(20):
                yield from stack.push(ctx, i + 1)

        def popper(ctx: Ctx):
            def body(t: Ctx):
                count = yield from t.load(stack.count_addr)
                top = yield from t.load(stack.top_addr)
                return (count, top)

            for _ in range(40):
                count, top = yield from ctx.transaction(
                    body, lock=stack.lock_addr
                )
                if count > 0 and top == 0:
                    inconsistencies.append((count, top))
                yield from ctx.delay(17)

        run_threads(pusher, popper)
        assert not inconsistencies
