"""Tests for the workload generators and the experiment harness."""

import pytest

from repro.bench.figures import (
    UpdateExperiment,
    baseline_throughput,
    run_update_experiment,
)
from repro.bench.lru import footprint_abort_rate
from repro.errors import ConfigurationError
from repro.workloads.layout import PoolLayout
from repro.workloads.pool import SCHEMES, build_update_program


class TestLayout:
    def test_variables_on_separate_lines(self):
        layout = PoolLayout(pool_size=100)
        addresses = [layout.var_addr(i) for i in range(100)]
        lines = {a // 256 for a in addresses}
        assert len(lines) == 100

    def test_locks_do_not_overlap_pool(self):
        layout = PoolLayout(pool_size=10_000)
        pool_range = (layout.pool_base,
                      layout.var_addr(10_000 - 1) + 256)
        for lock in (layout.coarse_lock_addr, layout.rw_lock_addr,
                     layout.fine_lock_addr(9_999)):
            assert not pool_range[0] <= lock < pool_range[1]

    def test_fine_locks_on_separate_lines(self):
        layout = PoolLayout(pool_size=50)
        lines = {layout.fine_lock_addr(i) // 256 for i in range(50)}
        assert len(lines) == 50


class TestProgramBuilder:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_all_schemes_assemble(self, scheme):
        n_vars = 1 if scheme == "fine" else 4
        program = build_update_program(scheme, PoolLayout(10),
                                       n_vars=n_vars, iterations=3)
        assert len(program) > 3

    def test_fine_with_four_vars_rejected(self):
        with pytest.raises(ConfigurationError):
            build_update_program("fine", PoolLayout(10), n_vars=4)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            build_update_program("magic", PoolLayout(10))

    def test_invalid_nvars_rejected(self):
        with pytest.raises(ConfigurationError):
            build_update_program("coarse", PoolLayout(10), n_vars=2)

    def test_pool1_four_vars_uses_consecutive_lines(self):
        """"If the pool consists of only 1 variable, we use 4 consecutive
        cache lines"."""
        program = build_update_program("none", PoolLayout(1), n_vars=4,
                                       iterations=1)
        mnemonics = [loc.instruction.mnemonic for loc in program]
        assert "RANDOM" not in mnemonics


class TestExperiments:
    @pytest.mark.parametrize("scheme", ["none", "coarse", "tbegin", "tbeginc"])
    def test_update_counts_are_exact(self, scheme):
        """Whatever the scheme, every increment must land (atomicity)."""
        experiment = UpdateExperiment(scheme, n_cpus=3, pool_size=4,
                                      n_vars=1, iterations=10)
        result = run_update_experiment(experiment)
        assert result.total_updates == 30

    def test_four_variable_updates_counted(self):
        experiment = UpdateExperiment("tbeginc", n_cpus=2, pool_size=8,
                                      n_vars=4, iterations=5)
        result = run_update_experiment(experiment)
        assert result.total_updates == 10

    def test_rwlock_read_experiment_runs(self):
        experiment = UpdateExperiment("rwlock", n_cpus=2, pool_size=100,
                                      n_vars=4, iterations=5)
        result = run_update_experiment(experiment)
        assert result.total_updates == 10

    def test_invalid_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            UpdateExperiment("nope", 2, 10)
        with pytest.raises(ConfigurationError):
            UpdateExperiment("coarse", 0, 10)

    def test_baseline_cached(self):
        first = baseline_throughput(iterations=10)
        second = baseline_throughput(iterations=10)
        assert first == second


class TestFootprintMonteCarlo:
    def test_tiny_footprints_never_abort(self):
        assert footprint_abort_rate(4, lru_extension=False, trials=10) == 0.0
        assert footprint_abort_rate(4, lru_extension=True, trials=10) == 0.0

    def test_pigeonhole_at_l1_capacity(self):
        """385+ lines cannot fit a 384-line L1: abort rate 1.0 without
        the LRU extension."""
        assert footprint_abort_rate(400, lru_extension=False, trials=5) == 1.0

    def test_extension_moves_the_limit_to_l2(self):
        assert footprint_abort_rate(400, lru_extension=True, trials=5) < 0.5
