"""Unit tests for the Transaction Diagnostic Block."""

import pytest
from hypothesis import given, strategies as st

from repro.core.abort import TransactionAbort
from repro.core.tdb import (
    TDB_SIZE,
    prefix_tdb_address,
    read_tdb,
    store_tdb,
)
from repro.errors import MachineStateError
from repro.mem.memory import MainMemory


def make_abort(**kwargs):
    defaults = dict(code=9, conflict_token=0x4200, aborted_ia=0x1010,
                    interruption_code=None, translation_address=None)
    defaults.update(kwargs)
    return TransactionAbort(**defaults)


def test_roundtrip():
    memory = MainMemory()
    grs = list(range(16))
    store_tdb(memory, 0x8000, make_abort(), nesting_depth=2,
              general_registers=grs)
    view = read_tdb(memory, 0x8000)
    assert view.valid
    assert view.abort_code == 9
    assert view.conflict_token == 0x4200
    assert view.conflict_token_valid
    assert view.nesting_depth == 2
    assert view.aborted_ia == 0x1010
    assert view.general_registers == tuple(range(16))


def test_missing_conflict_token_marked_invalid():
    memory = MainMemory()
    store_tdb(memory, 0x8000, make_abort(conflict_token=None), 1)
    view = read_tdb(memory, 0x8000)
    assert not view.conflict_token_valid
    assert view.conflict_token == 0


def test_interruption_fields():
    memory = MainMemory()
    store_tdb(memory, 0x8000,
              make_abort(code=4, interruption_code=0x11,
                         translation_address=0x123000),
              1)
    view = read_tdb(memory, 0x8000)
    assert view.interruption_code == 0x11
    assert view.translation_address == 0x123000


def test_alignment_enforced():
    with pytest.raises(MachineStateError):
        store_tdb(MainMemory(), 0x8001, make_abort(), 1)


def test_register_count_enforced():
    with pytest.raises(MachineStateError):
        store_tdb(MainMemory(), 0x8000, make_abort(), 1,
                  general_registers=[1, 2, 3])


def test_tdb_is_exactly_256_bytes():
    memory = MainMemory()
    memory.write_int(0x8000 + TDB_SIZE, 0xFF, 1)  # sentinel after the TDB
    store_tdb(memory, 0x8000, make_abort(), 1)
    assert memory.read_int(0x8000 + TDB_SIZE, 1) == 0xFF


def test_prefix_addresses_distinct_per_cpu():
    addresses = {prefix_tdb_address(cpu) for cpu in range(144)}
    assert len(addresses) == 144
    for addr in addresses:
        assert addr % 8 == 0


@given(code=st.integers(min_value=2, max_value=1 << 40),
       depth=st.integers(min_value=0, max_value=16),
       grs=st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1),
                    min_size=16, max_size=16))
def test_roundtrip_property(code, depth, grs):
    memory = MainMemory()
    store_tdb(memory, 0x8000, make_abort(code=code), depth, grs)
    view = read_tdb(memory, 0x8000)
    assert view.abort_code == code
    assert view.nesting_depth == depth
    assert view.general_registers == tuple(grs)
