"""Unit tests for XI message types and line-info bookkeeping."""

from repro.mem.line import DirectoryEntry, LineInfo, Ownership
from repro.mem.xi import Xi, XiResponse, XiType


class TestXiTypes:
    def test_rejectable_types(self):
        """Only demote and exclusive XIs can be rejected; read-only XIs
        need no response and LRU XIs come from the own hierarchy."""
        assert XiType.EXCLUSIVE.rejectable
        assert XiType.DEMOTE.rejectable
        assert not XiType.READ_ONLY.rejectable
        assert not XiType.LRU.rejectable

    def test_invalidating_types(self):
        """Demote XIs downgrade to read-only; every other type removes
        the line from the target."""
        assert XiType.EXCLUSIVE.invalidates
        assert XiType.READ_ONLY.invalidates
        assert XiType.LRU.invalidates
        assert not XiType.DEMOTE.invalidates

    def test_xi_is_immutable(self):
        xi = Xi(XiType.EXCLUSIVE, 0x100, 1, 2)
        assert xi.line == 0x100
        assert xi.requester == 1 and xi.target == 2


class TestOwnership:
    def test_grants(self):
        assert Ownership.EXCLUSIVE.grants_store()
        assert not Ownership.READ_ONLY.grants_store()
        assert Ownership.READ_ONLY.grants_load()
        assert not Ownership.INVALID.grants_load()


class TestDirectoryEntry:
    def test_clear_tx(self):
        entry = DirectoryEntry(line=0x100, tx_read=True, tx_dirty=True)
        entry.clear_tx()
        assert not entry.tx_read and not entry.tx_dirty


class TestLineInfo:
    def test_owners_union(self):
        info = LineInfo()
        assert info.is_unowned()
        info.ro_owners = {1, 2}
        info.ex_owner = 3
        assert info.owners() == {1, 2, 3}
        assert not info.is_unowned()

    def test_exclusive_only(self):
        info = LineInfo(ex_owner=5)
        assert info.owners() == {5}
