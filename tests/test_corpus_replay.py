"""Replay the checked-in verify corpus against every oracle.

The corpus (see ``tests/corpus/README.md``) holds hand-written seed
cases plus any failures archived by past fuzz runs. Replay must be
green — a corpus case that starts failing means a TM regression — and
bit-deterministic, since CI replays it on multiple Python versions.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.verify import case_from_json, replay_corpus, run_case
from repro.verify.dsl import tracked_addresses

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

CASE_FILES = sorted(
    name for name in os.listdir(CORPUS_DIR) if name.endswith(".json")
)


def test_corpus_is_not_empty():
    assert len(CASE_FILES) >= 4


def test_corpus_replay_is_green():
    results = replay_corpus(CORPUS_DIR)
    assert len(results) == len(CASE_FILES)
    failing = {path: violations for path, violations in results if violations}
    assert not failing


@pytest.mark.parametrize("name", CASE_FILES)
def test_corpus_case_replays_deterministically(name):
    with open(os.path.join(CORPUS_DIR, name)) as handle:
        case = case_from_json(handle.read())
    first = run_case(case)
    second = run_case(case)
    assert first.result.tx_log == second.result.tx_log
    for addr in sorted(tracked_addresses(case)):
        assert (first.machine.memory.read_int(addr, 8)
                == second.machine.memory.read_int(addr, 8))


@pytest.mark.parametrize("name", CASE_FILES)
def test_corpus_files_are_canonical_json(name):
    # Cases are written by case_to_json (sorted keys, indent 2); keeping
    # them canonical makes diffs reviewable.
    with open(os.path.join(CORPUS_DIR, name)) as handle:
        text = handle.read()
    assert text == json.dumps(json.loads(text), sort_keys=True,
                              indent=2) + "\n"
