"""Unit tests for Program Event Recording with the TX extensions."""

from repro.core.per import PerControl, PerEventType


def control(**ranges):
    per = PerControl()
    if "storage" in ranges:
        per.watch_storage(*ranges["storage"])
    if "ifetch" in ranges:
        per.watch_ifetch(*ranges["ifetch"])
    if "branch" in ranges:
        per.watch_branch(*ranges["branch"])
    return per


class TestStorageAlteration:
    def test_store_inside_range_triggers(self):
        per = control(storage=(0x1000, 0x100))
        event = per.check_store(0x1010, 8, in_transaction=False)
        assert event is not None
        assert event.event_type is PerEventType.STORAGE_ALTERATION

    def test_store_overlapping_range_edge_triggers(self):
        per = control(storage=(0x1000, 0x100))
        assert per.check_store(0x0FF8, 16, in_transaction=False) is not None

    def test_store_outside_range_silent(self):
        per = control(storage=(0x1000, 0x100))
        assert per.check_store(0x2000, 8, in_transaction=False) is None
        assert per.check_store(0x0FF0, 8, in_transaction=False) is None

    def test_no_range_configured(self):
        assert PerControl().check_store(0, 8, False) is None


class TestEventSuppression:
    def test_suppression_hides_events_in_transaction(self):
        per = control(storage=(0x1000, 0x100))
        per.event_suppression = True
        assert per.check_store(0x1010, 8, in_transaction=True) is None
        # Outside a transaction the event still fires.
        assert per.check_store(0x1010, 8, in_transaction=False) is not None

    def test_ifetch_suppression(self):
        per = control(ifetch=(0x1000, 0x100))
        per.event_suppression = True
        assert per.check_ifetch(0x1000, in_transaction=True) is None
        assert per.check_ifetch(0x1000, in_transaction=False) is not None

    def test_branch_suppression(self):
        per = control(branch=(0x1000, 0x100))
        per.event_suppression = True
        assert per.check_branch(0x1000, in_transaction=True) is None
        assert per.check_branch(0x1000, in_transaction=False) is not None


class TestTendEvent:
    def test_tend_event_fires_when_enabled(self):
        per = PerControl()
        per.tend_event = True
        event = per.check_tend(0x2000)
        assert event is not None
        assert event.event_type is PerEventType.TRANSACTION_END
        assert event.address == 0x2000

    def test_tend_event_disabled_by_default(self):
        assert PerControl().check_tend(0x2000) is None

    def test_tend_event_not_subject_to_suppression(self):
        """The TEND event exists precisely to re-check suppressed
        watch-points at commit time."""
        per = PerControl()
        per.tend_event = True
        per.event_suppression = True
        assert per.check_tend(0x2000) is not None


def test_clear_resets_ranges():
    per = control(storage=(0, 100), ifetch=(0, 100), branch=(0, 100))
    per.tend_event = True
    per.clear()
    assert per.check_store(0, 8, False) is None
    assert per.check_ifetch(0, False) is None
    assert per.check_branch(0, False) is None
    assert per.check_tend(0) is None
