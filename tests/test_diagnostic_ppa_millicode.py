"""Unit tests for the Transaction Diagnostic Control, PPA and millicode."""

import random

import pytest

from repro.core.abort import TransactionAbort
from repro.core.diagnostic import TransactionDiagnosticControl
from repro.core.millicode import (
    BROADCAST_STOP_THRESHOLD,
    Millicode,
    SPECULATION_OFF_THRESHOLD,
)
from repro.core.ppa import PpaAssist
from repro.errors import ConfigurationError
from repro.params import Latencies


class TestDiagnosticControl:
    def test_mode0_never_aborts(self):
        tdc = TransactionDiagnosticControl(random.Random(1), mode=0)
        assert not any(tdc.should_abort_now(False) for _ in range(1000))
        assert not tdc.must_abort_before_tend(False, fired_already=False)

    def test_mode1_aborts_sometimes(self):
        tdc = TransactionDiagnosticControl(random.Random(1), mode=1)
        hits = sum(tdc.should_abort_now(False) for _ in range(2000))
        assert 0 < hits < 2000

    def test_mode2_guarantees_abort_before_tend(self):
        tdc = TransactionDiagnosticControl(random.Random(1), mode=2)
        assert tdc.must_abort_before_tend(False, fired_already=False)
        assert not tdc.must_abort_before_tend(False, fired_already=True)

    def test_mode2_degrades_to_mode1_for_constrained(self):
        """"The latter setting is treated like the less aggressive
        setting for constrained transactions."""
        tdc = TransactionDiagnosticControl(random.Random(1), mode=2)
        assert tdc.effective_mode(constrained=True) == 1
        assert not tdc.must_abort_before_tend(True, fired_already=False)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            TransactionDiagnosticControl(random.Random(1), mode=5)


class TestPpa:
    def test_zero_count_no_delay(self):
        ppa = PpaAssist(Latencies(), random.Random(1))
        assert ppa.delay_cycles(0) == 0

    def test_delay_grows_with_abort_count(self):
        ppa = PpaAssist(Latencies(), random.Random(1))
        small = [ppa.delay_cycles(1) for _ in range(200)]
        large = [ppa.delay_cycles(6) for _ in range(200)]
        assert sum(large) / len(large) > sum(small) / len(small) * 2

    def test_delay_bounded_by_exponent_cap(self):
        latencies = Latencies()
        ppa = PpaAssist(latencies, random.Random(1))
        ceiling = latencies.on_chip_intervention * (1 << PpaAssist.MAX_EXPONENT)
        assert all(ppa.delay_cycles(100) <= ceiling for _ in range(200))

    def test_delay_is_randomised(self):
        ppa = PpaAssist(Latencies(), random.Random(1))
        assert len({ppa.delay_cycles(3) for _ in range(50)}) > 5

    @pytest.mark.parametrize("count", [0, 1, 6, 7, 100])
    def test_delay_in_clamped_range(self, count):
        """Counts 0/1/6/7/100: zero for the first attempt, otherwise
        within [unit, unit << min(count, MAX_EXPONENT)] — counts above
        the cap clamp instead of widening the delay window."""
        latencies = Latencies()
        ppa = PpaAssist(latencies, random.Random(7))
        unit = latencies.on_chip_intervention
        exponent = min(count, PpaAssist.MAX_EXPONENT)
        for _ in range(300):
            delay = ppa.delay_cycles(count)
            if count == 0:
                assert delay == 0
            else:
                assert unit <= delay <= unit * (1 << exponent)

    def test_counts_above_cap_share_the_capped_distribution(self):
        """Counts 7 and 100 draw from the same distribution as the cap
        (MAX_EXPONENT=6): same seeded rng => identical delay sequences."""
        for count in (7, 100):
            ppa_cap = PpaAssist(Latencies(), random.Random(3))
            ppa_over = PpaAssist(Latencies(), random.Random(3))
            assert [ppa_over.delay_cycles(count) for _ in range(200)] == [
                ppa_cap.delay_cycles(6) for _ in range(200)
            ]

    def test_delay_sequence_deterministic_per_seed(self):
        """The same seed yields the same delay sequence, one rng draw per
        positive count, regardless of the mix of abort counts."""
        counts = [1, 6, 7, 100, 0, 2, 100, 1]
        a = PpaAssist(Latencies(), random.Random(42))
        b = PpaAssist(Latencies(), random.Random(42))
        assert [a.delay_cycles(c) for c in counts] == [
            b.delay_cycles(c) for c in counts
        ]
        # Zero counts consume no randomness: dropping them does not shift
        # the remaining sequence.
        c = PpaAssist(Latencies(), random.Random(42))
        positive = [n for n in counts if n > 0]
        d = PpaAssist(Latencies(), random.Random(42))
        seq_with_zero = [c.delay_cycles(n) for n in counts if n > 0]
        assert seq_with_zero == [d.delay_cycles(n) for n in positive]


class TestMillicodeEscalation:
    def make(self):
        rng = random.Random(1)
        return Millicode(PpaAssist(Latencies(), rng), rng)

    def test_first_abort_immediate_retry(self):
        plan = self.make().note_constrained_abort()
        assert plan.delay_cycles == 0
        assert not plan.broadcast_stop

    def test_speculation_disabled_after_threshold(self):
        millicode = self.make()
        plans = [millicode.note_constrained_abort() for _ in range(6)]
        assert not plans[0].disable_speculation
        assert plans[SPECULATION_OFF_THRESHOLD - 1].disable_speculation

    def test_broadcast_stop_as_last_resort(self):
        millicode = self.make()
        plans = [millicode.note_constrained_abort() for _ in range(10)]
        assert not plans[0].broadcast_stop
        assert plans[BROADCAST_STOP_THRESHOLD - 1].broadcast_stop
        # Broadcast-stop retries do not also delay.
        assert plans[BROADCAST_STOP_THRESHOLD - 1].delay_cycles == 0

    def test_success_resets_counter(self):
        millicode = self.make()
        for _ in range(5):
            millicode.note_constrained_abort()
        millicode.note_constrained_success()
        assert millicode.constrained_abort_count == 0
        assert not millicode.note_constrained_abort().broadcast_stop

    def test_os_interruption_resets_counter(self):
        millicode = self.make()
        for _ in range(5):
            millicode.note_constrained_abort()
        millicode.note_os_interruption()
        assert millicode.constrained_abort_count == 0

    def test_abort_cost_includes_tdb(self):
        millicode = self.make()
        abort = TransactionAbort(code=9)
        without = millicode.abort_processing_cost(abort, False, 8)
        with_tdb = millicode.abort_processing_cost(abort, True, 8)
        assert with_tdb > without
