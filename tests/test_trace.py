"""Tests for the event tracer."""

import pytest

from repro.cpu.assembler import assemble
from repro.cpu.isa import (
    AGSI,
    AHI,
    HALT,
    J,
    JNZ,
    LHI,
    Mem,
    TABORT,
    TBEGIN,
    TEND,
)
from repro.params import ZEC12
from repro.sim.machine import Machine
from repro.sim.trace import ALL_KINDS, Tracer

DATA = 0x10000


def committing_machine(n_cpus=1, iterations=3):
    program = assemble([
        LHI(9, iterations),
        ("loop", TBEGIN()),
        JNZ("retry"),
        AGSI(Mem(disp=DATA), 1),
        TEND(),
        AHI(9, -1),
        JNZ("loop"),
        J("done"),
        ("retry", J("loop")),
        ("done", HALT()),
    ])
    machine = Machine(ZEC12.with_cpus(n_cpus))
    for _ in range(n_cpus):
        machine.add_program(program)
    return machine


def test_commit_events_recorded():
    machine = committing_machine()
    tracer = Tracer(machine)
    machine.run()
    assert len(tracer.of_kind("tbegin")) == 3
    assert len(tracer.of_kind("commit")) == 3
    assert not tracer.of_kind("abort")


def test_abort_events_with_codes():
    program = assemble([
        TBEGIN(),
        JNZ("out"),
        TABORT(258),
        TEND(),
        ("out", HALT()),
    ])
    machine = Machine(ZEC12)
    machine.add_program(program)
    tracer = Tracer(machine)
    machine.run()
    aborts = tracer.of_kind("abort")
    assert len(aborts) == 1
    assert "TABORT(258)" in aborts[0].detail
    assert tracer.aborts_by_code()["TABORT(258)"] == 1


def test_xi_and_fetch_events_under_contention():
    machine = committing_machine(n_cpus=2, iterations=5)
    tracer = Tracer(machine, kinds={"xi", "fetch"})
    machine.run()
    assert tracer.of_kind("fetch")      # misses happened
    assert tracer.of_kind("xi")         # the counter line bounced
    # Kind filtering worked: nothing else recorded.
    assert not tracer.of_kind("commit")


def test_kind_filtering_validated():
    machine = committing_machine()
    with pytest.raises(ValueError):
        Tracer(machine, kinds={"bogus"})


def test_event_limit_drops_excess():
    machine = committing_machine(iterations=10)
    tracer = Tracer(machine, limit=2)
    machine.run()
    assert len(tracer.events) == 2
    assert tracer.dropped > 0
    assert "dropped" in tracer.summary()


def test_events_are_time_ordered_and_printable():
    machine = committing_machine(n_cpus=2, iterations=4)
    tracer = Tracer(machine)
    machine.run()
    times = [e.time for e in tracer.events]
    assert times == sorted(times)
    assert all(str(e) for e in tracer.events)
    summary = tracer.summary()
    for kind in sorted(ALL_KINDS):
        assert kind in summary


def test_tracing_does_not_change_results():
    plain = committing_machine(n_cpus=2, iterations=5)
    plain_result = plain.run()
    traced = committing_machine(n_cpus=2, iterations=5)
    Tracer(traced)
    traced_result = traced.run()
    assert plain.memory.read_int(DATA, 8) == traced.memory.read_int(DATA, 8)
    assert plain_result.total_committed == traced_result.total_committed
    assert plain_result.cycles == traced_result.cycles
