"""Tests for the event tracer."""

import pytest

from repro.cpu.assembler import assemble
from repro.cpu.isa import (
    AGSI,
    AHI,
    HALT,
    J,
    JNZ,
    LHI,
    Mem,
    TABORT,
    TBEGIN,
    TEND,
)
from repro.params import ZEC12
from repro.sim.machine import Machine
from repro.sim.trace import ALL_KINDS, Tracer

DATA = 0x10000


def committing_machine(n_cpus=1, iterations=3):
    program = assemble([
        LHI(9, iterations),
        ("loop", TBEGIN()),
        JNZ("retry"),
        AGSI(Mem(disp=DATA), 1),
        TEND(),
        AHI(9, -1),
        JNZ("loop"),
        J("done"),
        ("retry", J("loop")),
        ("done", HALT()),
    ])
    machine = Machine(ZEC12.with_cpus(n_cpus))
    for _ in range(n_cpus):
        machine.add_program(program)
    return machine


def test_commit_events_recorded():
    machine = committing_machine()
    tracer = Tracer(machine)
    machine.run()
    assert len(tracer.of_kind("tbegin")) == 3
    assert len(tracer.of_kind("commit")) == 3
    assert not tracer.of_kind("abort")


def test_abort_events_with_codes():
    program = assemble([
        TBEGIN(),
        JNZ("out"),
        TABORT(258),
        TEND(),
        ("out", HALT()),
    ])
    machine = Machine(ZEC12)
    machine.add_program(program)
    tracer = Tracer(machine)
    machine.run()
    aborts = tracer.of_kind("abort")
    assert len(aborts) == 1
    assert "TABORT(258)" in aborts[0].detail
    assert tracer.aborts_by_code()["TABORT(258)"] == 1


def test_xi_and_fetch_events_under_contention():
    machine = committing_machine(n_cpus=2, iterations=5)
    tracer = Tracer(machine, kinds={"xi", "fetch"})
    machine.run()
    assert tracer.of_kind("fetch")      # misses happened
    assert tracer.of_kind("xi")         # the counter line bounced
    # Kind filtering worked: nothing else recorded.
    assert not tracer.of_kind("commit")


def test_kind_filtering_validated():
    machine = committing_machine()
    with pytest.raises(ValueError):
        Tracer(machine, kinds={"bogus"})


def test_event_limit_drops_excess():
    machine = committing_machine(iterations=10)
    tracer = Tracer(machine, limit=2)
    machine.run()
    assert len(tracer.events) == 2
    assert tracer.dropped > 0
    assert "dropped" in tracer.summary()


def test_events_are_time_ordered_and_printable():
    machine = committing_machine(n_cpus=2, iterations=4)
    tracer = Tracer(machine)
    machine.run()
    times = [e.time for e in tracer.events]
    assert times == sorted(times)
    assert all(str(e) for e in tracer.events)
    summary = tracer.summary()
    for kind in sorted(ALL_KINDS):
        assert kind in summary


def force_fetch_slow_path(machine):
    """Disable the inlined L1-hit fetch fast path on every engine.

    Rebinding ``_l1_entries`` to an empty dict makes the inline probe
    always miss, so every fetch goes through the fabric — the pre-fast-
    path behaviour. L1 hits still resolve identically there (same
    latency, same LRU touch, same ``"l1"`` source), so results must be
    bit-identical.
    """
    for engine in machine.engines:
        engine._l1_entries = {}


def test_traced_fetch_count_matches_slow_path():
    """Regression: the inlined L1-hit fast path must still produce fetch
    hook events, so a traced run records the same fetch count as a run
    forced down the original slow path."""
    fast = committing_machine(n_cpus=2, iterations=5)
    fast_tracer = Tracer(fast, kinds={"fetch"})
    fast_result = fast.run()

    slow = committing_machine(n_cpus=2, iterations=5)
    force_fetch_slow_path(slow)
    slow_tracer = Tracer(slow, kinds={"fetch"})
    slow_result = slow.run()

    assert fast_result.cycles == slow_result.cycles
    assert len(fast_tracer.of_kind("fetch")) == len(slow_tracer.of_kind("fetch"))
    assert [(e.time, e.cpu, e.detail) for e in fast_tracer.events] == [
        (e.time, e.cpu, e.detail) for e in slow_tracer.events
    ]
    assert fast_tracer.summary() == slow_tracer.summary()


def test_fast_path_fetches_reach_hooks():
    """The inline L1-hit return site fires note_fetch like the slow path."""
    from repro.sim.metrics import MetricsRegistry

    fast = committing_machine(iterations=5)
    fast_registry = MetricsRegistry().attach(fast)
    fast.run()

    slow = committing_machine(iterations=5)
    force_fetch_slow_path(slow)
    slow_registry = MetricsRegistry().attach(slow)
    slow.run()

    fast_sources = fast_registry.summary()["totals"]["fetch_sources"]
    slow_sources = slow_registry.summary()["totals"]["fetch_sources"]
    assert fast_sources.get("l1", 0) > 0  # fast path hits were observed
    assert fast_sources == slow_sources


def test_summary_counts_past_event_limit():
    """The event limit caps storage only: summary() keeps exact per-kind
    totals and reports the dropped count."""
    unlimited = committing_machine(n_cpus=2, iterations=6)
    full = Tracer(unlimited)
    unlimited.run()

    limited_machine = committing_machine(n_cpus=2, iterations=6)
    limited = Tracer(limited_machine, limit=3)
    limited_machine.run()

    assert len(limited.events) == 3
    assert limited.dropped == sum(full.counts().values()) - 3
    assert limited.counts() == full.counts()
    # summary() reports the uncapped totals plus the dropped count.
    assert limited.summary() == full.summary() + f" dropped={limited.dropped}"


def test_tracing_does_not_change_results():
    plain = committing_machine(n_cpus=2, iterations=5)
    plain_result = plain.run()
    traced = committing_machine(n_cpus=2, iterations=5)
    Tracer(traced)
    traced_result = traced.run()
    assert plain.memory.read_int(DATA, 8) == traced.memory.read_int(DATA, 8)
    assert plain_result.total_committed == traced_result.total_committed
    assert plain_result.cycles == traced_result.cycles
