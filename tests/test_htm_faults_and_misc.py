"""HTM API edge cases: page faults, unhandled aborts, misc errors."""

import pytest

from repro.errors import MachineStateError
from repro.htm.api import Ctx, HtmMachine
from repro.params import ZEC12

ADDR = 0x10000


def test_page_fault_in_htm_thread_is_serviced_and_retried():
    machine = HtmMachine(ZEC12)
    machine.page_table.unmap(ADDR)
    seen = {}

    def worker(ctx: Ctx):
        seen["v"] = yield from ctx.load(ADDR)

    machine.spawn(worker)
    machine.run()
    assert seen["v"] == 0
    assert machine.page_table.paged_in  # the OS resolved the fault
    assert machine.os.interruptions


def test_filtered_fault_inside_constrained_tx_interrupts():
    """Constrained transactions have PIFC 0: faults always reach the OS
    and the retry then succeeds."""
    machine = HtmMachine(ZEC12)
    machine.page_table.unmap(ADDR)
    commits = []

    def worker(ctx: Ctx):
        def body(t: Ctx):
            yield from t.add(ADDR, 1)

        yield from ctx.transaction(body, constrained=True)
        commits.append(True)

    machine.spawn(worker)
    machine.run()
    machine.engines[0].quiesce()
    assert commits
    assert machine.memory.read_int(ADDR, 8) == 1
    assert machine.page_table.paged_in


def test_unhandled_abort_in_bare_thread_is_a_usage_error():
    """Transactional state must be managed through ctx.transaction; a
    bare body leaking an abort is reported as a machine-state error."""
    machine = HtmMachine(ZEC12)

    def worker(ctx: Ctx):
        ctx.engine.tx_begin(None, constrained=False, ia=0)
        ctx.engine.tx_abort(256)  # raises; nothing catches it
        yield

    machine.spawn(worker)
    with pytest.raises(MachineStateError):
        machine.run()


def test_unknown_op_rejected():
    machine = HtmMachine(ZEC12)

    def worker(ctx: Ctx):
        yield ("frobnicate", 1)

    machine.spawn(worker)
    with pytest.raises(MachineStateError):
        machine.run()


def test_delay_op_advances_time():
    machine = HtmMachine(ZEC12)

    def worker(ctx: Ctx):
        yield from ctx.delay(12_345)

    machine.spawn(worker)
    result = machine.run()
    assert result.cycles >= 12_345


def test_spawned_threads_report_instruction_counts():
    machine = HtmMachine(ZEC12)

    def worker(ctx: Ctx):
        for _ in range(5):
            yield from ctx.store(ADDR, 1)

    machine.spawn(worker)
    result = machine.run()
    assert result.cpus[0].instructions == 5
