"""Bit-identity tests for virtual sequence numbering (``REPRO_VIRTSEQ``).

The contract under test: de-materializing parked spin/retry chains —
advancing their events off-queue with analytically assigned sequence
numbers, fast-forwarding closed-form stretches, and re-materializing at
wake or budget — changes *nothing* observable. Every pinned 48-CPU
point must produce byte-identical results across the full flag matrix
(VIRTSEQ x SPIN_ELIDE x HEAP_SCHED), serial and parallel, with the
``REPRO_VIRTSEQ_CHECK=1`` differential replay (standalone and under
fuzzer jitter) and cycle-budget runs that stop mid-virtual-chain.
"""

from __future__ import annotations

import heapq
import random

import pytest

from repro.bench.figures import UpdateExperiment, run_update_experiment
from repro.bench.parallel import run_tasks
from repro.cpu.assembler import assemble
from repro.cpu.isa import HALT
from repro.errors import MachineStateError
from repro.mem.xi import WATCH_BLOCK_MASK
from repro.params import ZEC12
from repro.sim.machine import Machine
from repro.sim.scheduler import (
    AdaptiveEventQueue,
    CalendarEventQueue,
    HeapEventQueue,
    Scheduler,
)
from repro.verify.jitter import ScheduleJitter
from repro.workloads.pool import PoolLayout, build_update_program

#: (cycles, instructions, tx_aborted, xi_rejects) pinned from the
#: reference implementation — the same three 48-CPU points the
#: retry-elision matrix pins (fine-grained locking is single-variable
#: by design). Virtual sequence numbering must never move them.
PINNED_48CPU = [
    (UpdateExperiment("coarse", 48, 1000, 4, iterations=3),
     (280111, 186668, 0, 0)),
    (UpdateExperiment("fine", 48, 1000, 1, iterations=3),
     (3412, 2256, 0, 0)),
    (UpdateExperiment("rwlock", 48, 1000, 4, iterations=3),
     (51045, 3984, 0, 0)),
]

IDS = [f"{e.scheme}-{e.n_cpus}" for e, _ in PINNED_48CPU]

#: The full scheduler mode matrix: virtual seq numbering on/off x
#: spin/retry elision on/off x calendar/heap event queue.
VIRT_MODES = [
    (virtseq, elide, heap)
    for virtseq in ("1", "0")
    for elide in ("1", "0")
    for heap in ("0", "1")
]
VIRT_MODE_IDS = [
    f"{'virt' if v == '1' else 'mat'}-"
    f"{'elide' if e == '1' else 'plain'}-"
    f"{'heap' if h == '1' else 'cal'}"
    for v, e, h in VIRT_MODES
]


def _summary(result):
    return (
        result.cycles,
        sum(c.instructions for c in result.cpus),
        sum(c.tx_aborted for c in result.cpus),
        sum(c.xi_rejects for c in result.cpus),
    )


def _machine(experiment, virtseq=None):
    machine = Machine(ZEC12.with_cpus(experiment.n_cpus), virtseq=virtseq)
    program = build_update_program(
        experiment.scheme,
        PoolLayout(experiment.pool_size),
        n_vars=experiment.n_vars,
        iterations=experiment.iterations,
        fallback_mode=machine.fallback_mode,
    )
    for _ in range(experiment.n_cpus):
        machine.add_program(program)
    return machine


class TestFlagMatrixIdentity:
    @pytest.mark.parametrize("experiment,pinned", PINNED_48CPU, ids=IDS)
    @pytest.mark.parametrize("virtseq,elide,heap", VIRT_MODES,
                             ids=VIRT_MODE_IDS)
    def test_serial(self, experiment, pinned, virtseq, elide, heap,
                    monkeypatch):
        monkeypatch.setenv("REPRO_VIRTSEQ", virtseq)
        monkeypatch.setenv("REPRO_SPIN_ELIDE", elide)
        monkeypatch.setenv("REPRO_HEAP_SCHED", heap)
        result = run_update_experiment(experiment)
        assert _summary(result) == pinned
        if virtseq == "0":
            # Opt-out: the queue is fully materialized.
            assert result.sched["virtual_events"] == 0
            assert result.sched["fast_forwarded_events"] == 0
            assert result.sched["queue_switches"] == 0
        if heap == "1":
            # The forced bare heap bypasses the adaptive queue.
            assert result.sched["queue_switches"] == 0

    @pytest.mark.parametrize("virtseq", ["1", "0"], ids=["virt", "mat"])
    def test_parallel(self, virtseq, monkeypatch):
        # Workers fork after the env change, so they inherit it.
        monkeypatch.setenv("REPRO_VIRTSEQ", virtseq)
        monkeypatch.setenv("REPRO_SPIN_ELIDE", "1")
        results = run_tasks(
            [("update", experiment) for experiment, _ in PINNED_48CPU],
            workers=2,
        )
        assert [_summary(r) for r in results] == [
            pinned for _, pinned in PINNED_48CPU
        ]

    def test_virtual_advance_engages_on_coarse_point(self, monkeypatch):
        # Guards the matrix against vacuity: the contended point must
        # actually advance events off-queue under the default mode.
        monkeypatch.delenv("REPRO_VIRTSEQ", raising=False)
        monkeypatch.setenv("REPRO_SPIN_ELIDE", "1")
        monkeypatch.delenv("REPRO_HEAP_SCHED", raising=False)
        result = run_update_experiment(PINNED_48CPU[0][0])
        sched = result.sched
        assert sched["virtual_events"] > 0
        assert sched["events"] >= sched["virtual_events"]
        assert sched["virtual_events"] >= sched["fast_forwarded_events"]


class TestVirtseqCheck:
    def test_differential_run_passes(self, monkeypatch):
        monkeypatch.setenv("REPRO_VIRTSEQ_CHECK", "1")
        monkeypatch.setenv("REPRO_SPIN_ELIDE", "1")
        experiment = UpdateExperiment("coarse", 12, 1000, 4, iterations=5)
        result = run_update_experiment(experiment)
        assert result.sched["virtual_events"] > 0

    def test_differential_under_jitter(self, monkeypatch):
        # Spin parking stays off under perturbation hooks, but retry
        # parking (and its virtual ticks, which draw the jitter in
        # exact pop order) survives — the materialized replay must come
        # back bit-identical with parking demonstrably engaged.
        monkeypatch.setenv("REPRO_VIRTSEQ_CHECK", "1")
        monkeypatch.setenv("REPRO_SPIN_ELIDE", "1")
        experiment = UpdateExperiment("coarse", 12, 1000, 4, iterations=5)
        for seed in (0, 7):
            machine = _machine(experiment)
            machine.schedule_perturb = ScheduleJitter(seed, 9)
            result = machine.run()
            assert result.sched["retry_parks"] > 0
            assert result.sched["parks"] == 0  # spin parking stays off

    def test_differential_with_cycle_budget(self, monkeypatch):
        # The replay must also agree when the run stops mid-chain.
        monkeypatch.setenv("REPRO_VIRTSEQ_CHECK", "1")
        monkeypatch.setenv("REPRO_SPIN_ELIDE", "1")
        experiment = UpdateExperiment("coarse", 12, 1000, 4, iterations=5)
        result = run_update_experiment(experiment, max_cycles=9000)
        assert result.aborted_early


class TestCycleBudgetBoundary:
    #: Budgets chosen to land at the very start, deep inside, and just
    #: short of the end of the coarse point's 280111-cycle run — the
    #: middle ones stop mid-virtual-chain with every spinner parked.
    BUDGETS = (1000, 57_001, 137_777, 279_000)

    @pytest.mark.parametrize("budget", BUDGETS)
    def test_budget_identity_mid_chain(self, budget):
        experiment = PINNED_48CPU[0][0]
        virt = _machine(experiment, virtseq=True).run(max_cycles=budget)
        mat = _machine(experiment, virtseq=False).run(max_cycles=budget)
        assert virt == mat
        assert virt.aborted_early
        assert mat.sched["virtual_events"] == 0

    def test_budget_truncates_virtual_chains(self):
        # At a deep mid-run budget the virtual run must actually have
        # advanced events off-queue before the clamp.
        experiment = PINNED_48CPU[0][0]
        virt = _machine(experiment, virtseq=True).run(max_cycles=137_777)
        assert virt.sched["virtual_events"] > 0


class TestDeadlockDiagnosticOffQueue:
    def test_diagnostic_names_block_with_head_off_queue(self):
        # All runnable CPUs done, the lone waiter's head de-materialized
        # into the off-queue table: the diagnostic must still name the
        # watched block (the LineWatchTable, not the event queue, is
        # the ground truth) and flag the head as off-queue.
        machine = Machine(ZEC12.with_cpus(4))
        cpu = machine.add_program(assemble([HALT()]))
        line = 0x8000
        cpu.engine.fabric.watches.add(0, line, line & WATCH_BLOCK_MASK)
        scheduler = Scheduler(machine.drivers, virtseq=True)
        scheduler._parked[0] = None  # the guard only reads the indices
        scheduler._vmap[0] = [0, 0, 0, None, None]  # head is off-queue
        with pytest.raises(MachineStateError) as exc:
            scheduler._raise_parked_deadlock()
        message = str(exc.value)
        assert "cpu 0 parked on block 0x8000" in message
        assert "head off-queue" in message

    def test_diagnostic_without_off_queue_head(self):
        machine = Machine(ZEC12.with_cpus(4))
        cpu = machine.add_program(assemble([HALT()]))
        line = 0x8000
        cpu.engine.add_retry_watch(line, line & WATCH_BLOCK_MASK)
        scheduler = Scheduler(machine.drivers, virtseq=True)
        scheduler._parked[0] = None
        with pytest.raises(MachineStateError) as exc:
            scheduler._raise_parked_deadlock()
        message = str(exc.value)
        assert "cpu 0 retry-parked on block 0x8000" in message
        assert "off-queue" not in message


class TestAdaptiveQueue:
    def test_randomized_switchover_differential(self):
        # Drive the adaptive queue through both hysteresis thresholds
        # with randomized push/pop/pushpop traffic, calling
        # maybe_switch() on a cadence like the scheduler does; the pop
        # stream must match a reference heap exactly across switches.
        rng = random.Random(20260808)
        for trial in range(10):
            q = AdaptiveEventQueue()
            ref = []
            seq = 0
            now = 0
            switches_seen = 0
            # Growth, drain, and regrowth phases cross HIGH then LOW
            # then HIGH again.
            phases = [(0.25, 500), (0.80, 700), (0.30, 400)]
            for pop_bias, ops in phases:
                for _ in range(ops):
                    roll = rng.random()
                    if ref and roll < pop_bias:
                        expected = heapq.heappop(ref)
                        assert q.pop() == expected
                        now = expected[0]
                    elif ref and roll < pop_bias + 0.1:
                        seq += 1
                        item = (now + rng.randrange(64), seq, seq % 48)
                        expected = heapq.heappushpop(ref, item)
                        assert q.pushpop(item) == expected
                        now = expected[0]
                    else:
                        dt = rng.choice((0, 0, 1, 2, 3, 5, 17, 130, 341,
                                         4096))
                        seq += 1
                        item = (now + dt, seq, seq % 48)
                        q.push(item)
                        heapq.heappush(ref, item)
                    assert q.n == len(ref)
                    if rng.random() < 0.05 and q.maybe_switch():
                        switches_seen += 1
            while ref:
                assert q.pop() == heapq.heappop(ref)
            assert q.switches == switches_seen
            assert q.switches >= 2, "matrix is vacuous without switchovers"

    def test_hysteresis_band_prevents_thrash(self):
        q = AdaptiveEventQueue()
        for seq in range(AdaptiveEventQueue.HIGH):
            q.push((seq, seq, 0))
        # At HIGH occupancy exactly, still the heap (strictly-above
        # trips the switch).
        assert not q.maybe_switch()
        q.push((999, 999, 0))
        assert q.maybe_switch()
        assert not q._is_heap
        # Inside the band: no switch back.
        while q.n > AdaptiveEventQueue.LOW:
            q.pop()
        assert not q.maybe_switch()
        q.pop()
        assert q.maybe_switch()
        assert q._is_heap
        assert q.switches == 2

    def test_switch_preserves_stat_bases(self):
        q = AdaptiveEventQueue()
        for seq in range(AdaptiveEventQueue.HIGH + 1):
            q.push((seq % 7, seq, 0))
        assert q.maybe_switch()
        occ_on_calendar = q.max_occupancy
        while q.n >= AdaptiveEventQueue.LOW:
            q.pop()
        assert q.maybe_switch()
        # The calendar's high-water mark survives the switch back.
        assert q.max_occupancy >= occ_on_calendar

    def test_scheduler_queue_selection(self, monkeypatch):
        machine = Machine(ZEC12.with_cpus(2))
        machine.add_program(assemble([HALT()]))
        monkeypatch.delenv("REPRO_HEAP_SCHED", raising=False)
        assert isinstance(Scheduler(machine.drivers, virtseq=True)._queue,
                          AdaptiveEventQueue)
        assert isinstance(Scheduler(machine.drivers, virtseq=False)._queue,
                          CalendarEventQueue)
        monkeypatch.setenv("REPRO_HEAP_SCHED", "1")
        assert isinstance(Scheduler(machine.drivers, virtseq=True)._queue,
                          HeapEventQueue)
