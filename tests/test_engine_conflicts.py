"""Conflict detection, stiff-arming, isolation and footprint overflow."""

import dataclasses

import pytest

from conftest import EngineHarness, small_params

from repro.core.abort import AbortCode
from repro.core.engine import FetchRetry
from repro.errors import TransactionAbortSignal
from repro.mem.xi import Xi, XiResponse, XiType
from repro.params import CacheGeometry

A = 0x10000
B = 0x20000


class TestReadSetConflicts:
    def test_remote_store_aborts_reader(self, duo):
        """A read-only XI (writer invalidating readers) hits the read set
        and aborts — not rejectable."""
        duo.tbegin(0)
        duo.load(0, A)
        duo.store(1, A, 9)  # CPU1 takes the line exclusive
        engine0 = duo.engine(0)
        assert engine0.pending_abort is not None
        with pytest.raises(TransactionAbortSignal):
            engine0.raise_if_pending()
        abort = duo.process_abort(0)
        assert abort.code == AbortCode.FETCH_CONFLICT
        assert abort.conflict_token == A
        assert abort.condition_code == 2

    def test_remote_load_does_not_disturb_reader(self, duo):
        """Two transactional readers share the line peacefully."""
        duo.tbegin(0)
        duo.load(0, A)
        duo.tbegin(1)
        duo.load(1, A)
        assert duo.engine(0).pending_abort is None
        assert duo.engine(1).pending_abort is None
        duo.tend(0)
        duo.tend(1)

    def test_opacity_no_partial_state_visible(self, duo):
        """Another CPU can never observe one of two tx stores (isolation
        holds even though the transaction later aborts)."""
        duo.store(0, A, 1)
        duo.store(0, B, 1)
        duo.quiesce()
        duo.tbegin(0)
        duo.store(0, A, 2)
        duo.store(0, B, 2)
        # CPU1 reads both: this conflicts, aborting CPU0 (after the
        # stiff-arm threshold), and must see the *old* values of both.
        assert duo.load(1, A) == 1
        assert duo.load(1, B) == 1


class TestWriteSetStiffArm:
    def test_write_set_xi_rejected_then_threshold_abort(self, duo):
        engine0 = duo.engine(0)
        duo.tbegin(0)
        duo.store(0, A, 7)
        threshold = duo.params.tx.xi_reject_threshold
        # Deliver exclusive XIs directly: the first (threshold-1) are
        # rejected (stiff-arm), then the engine aborts and accepts.
        for i in range(threshold - 1):
            response, _ = engine0.receive_xi(Xi(XiType.EXCLUSIVE, A, 1, 0))
            assert response is XiResponse.REJECT
        response, _ = engine0.receive_xi(Xi(XiType.EXCLUSIVE, A, 1, 0))
        assert response is XiResponse.ACCEPT
        assert engine0.pending_abort.code == AbortCode.STORE_CONFLICT

    def test_completing_instructions_resets_reject_counter(self, duo):
        engine0 = duo.engine(0)
        duo.tbegin(0)
        duo.store(0, A, 7)
        threshold = duo.params.tx.xi_reject_threshold
        for _ in range(3):
            for _ in range(threshold - 1):
                response, _ = engine0.receive_xi(Xi(XiType.EXCLUSIVE, A, 1, 0))
                assert response is XiResponse.REJECT
            engine0.note_instruction()  # completion: counter restarts
        assert engine0.pending_abort is None

    def test_stopped_cpu_does_not_stiff_arm(self, duo):
        engine0 = duo.engine(0)
        duo.tbegin(0)
        duo.store(0, A, 7)
        engine0.stopped_by_broadcast = True
        response, _ = engine0.receive_xi(Xi(XiType.EXCLUSIVE, A, 1, 0))
        assert response is XiResponse.ACCEPT
        assert engine0.pending_abort is not None

    def test_conflicting_writers_serialise_without_abort(self, duo):
        """Two CPUs incrementing the same variable with short txs: the
        stiff-arm lets each holder finish; nobody needs to abort."""
        for i in range(10):
            cpu = i % 2
            duo.tbegin(cpu)
            duo.add(cpu, A, 1)
            duo.tend(cpu)
        duo.quiesce()
        assert duo.memory.read_int(A, 8) == 10
        assert duo.engine(0).stats_tx_aborted == 0
        assert duo.engine(1).stats_tx_aborted == 0


class TestDemoteXi:
    def test_demote_conflicts_with_write_set_only(self, duo):
        engine0 = duo.engine(0)
        duo.tbegin(0)
        duo.load(0, A)  # read set only
        response, _ = engine0.receive_xi(Xi(XiType.DEMOTE, A, 1, 0))
        assert response is XiResponse.ACCEPT  # reading is still fine
        assert engine0.pending_abort is None

    def test_demote_on_write_set_rejected(self, duo):
        engine0 = duo.engine(0)
        duo.tbegin(0)
        duo.store(0, A, 1)
        response, _ = engine0.receive_xi(Xi(XiType.DEMOTE, A, 1, 0))
        assert response is XiResponse.REJECT


class TestFootprintOverflow:
    def _tiny_l1_harness(self, lru_extension: bool) -> EngineHarness:
        # Pin the policy these tests exercise, so a suite-wide
        # REPRO_FOOTPRINT_POLICY override cannot change what they measure.
        params = dataclasses.replace(
            small_params(
                n_cpus=1,
                lru_extension=lru_extension,
                footprint_policy="zec12" if lru_extension
                else "no-lru-extension",
            ),
            l1=CacheGeometry(ways=2, rows=2),
            l2=CacheGeometry(ways=4, rows=4),
        )
        return EngineHarness(params=params, n_cpus=1)

    def test_l1_overflow_without_extension_aborts(self):
        harness = self._tiny_l1_harness(lru_extension=False)
        harness.tbegin()
        with pytest.raises(TransactionAbortSignal):
            for i in range(5):  # 5 lines into a 4-line L1
                harness.load(0, 0x100000 + i * 256)
        abort = harness.process_abort()
        assert abort.code == AbortCode.FETCH_OVERFLOW
        assert abort.condition_code == 3

    def test_l1_overflow_with_extension_tolerated(self):
        harness = self._tiny_l1_harness(lru_extension=True)
        harness.tbegin()
        for i in range(8):  # fits the 16-line L2
            harness.load(0, 0x100000 + i * 256)
        harness.tend()
        assert harness.engine().stats_tx_committed == 1

    def test_l2_overflow_aborts_even_with_extension(self):
        harness = self._tiny_l1_harness(lru_extension=True)
        harness.tbegin()
        with pytest.raises(TransactionAbortSignal):
            for i in range(20):  # exceeds the 16-line L2
                harness.load(0, 0x100000 + i * 256)
        abort = harness.process_abort()
        assert abort.code == AbortCode.FETCH_OVERFLOW

    def test_extension_false_positive_aborts(self):
        """An XI to a *different* line in a marked extension row aborts
        (no precise address tracking exists for the extension)."""
        harness = self._tiny_l1_harness(lru_extension=True)
        engine = harness.engine()
        harness.tbegin()
        # Fill row 0 beyond L1 associativity: lines 0, 2, 4 map to row 0
        # of the 2-row L1 (line index mod 2 == 0).
        for i in (0, 2, 4):
            harness.load(0, 0x100000 + i * 256)
        assert engine.l1.extension_rows() >= 1
        # An unrelated line mapping to the same row:
        foreign = 0x500000  # line index even -> row 0
        response, _ = engine.receive_xi(Xi(XiType.READ_ONLY, foreign, 1, 0))
        assert response is XiResponse.ACCEPT
        assert engine.pending_abort is not None
        assert engine.pending_abort.code == AbortCode.FETCH_CONFLICT

    def test_store_cache_overflow_aborts(self):
        params = dataclasses.replace(small_params(n_cpus=1))
        params = dataclasses.replace(
            params, tx=dataclasses.replace(params.tx, store_cache_entries=2)
        )
        harness = EngineHarness(params=params, n_cpus=1)
        harness.tbegin()
        harness.store(0, 0x100000, 1)
        harness.store(0, 0x100000 + 128, 2)
        with pytest.raises(TransactionAbortSignal):
            harness.store(0, 0x100000 + 512, 3)
        abort = harness.process_abort()
        assert abort.code == AbortCode.STORE_OVERFLOW


class TestLruXi:
    def test_lru_xi_on_read_set_aborts(self, harness):
        engine = harness.engine()
        harness.tbegin()
        harness.load(0, A)
        response, _ = engine.receive_xi(Xi(XiType.LRU, A, -1, 0))
        assert response is XiResponse.ACCEPT
        assert engine.pending_abort.code == AbortCode.CACHE_FETCH_RELATED

    def test_lru_xi_on_clean_line_harmless(self, harness):
        engine = harness.engine()
        harness.load(0, A)
        harness.tbegin()
        response, _ = engine.receive_xi(Xi(XiType.LRU, A, -1, 0))
        assert response is XiResponse.ACCEPT
        assert engine.pending_abort is None
