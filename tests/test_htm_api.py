"""Tests for the high-level HTM API (coroutine threads)."""

import pytest

from repro.core.abort import AbortCode
from repro.htm.api import Ctx, HtmMachine, TransactionFailed
from repro.params import ZEC12

COUNTER = 0x10000
LOCK = 0x20000


def make_machine(n: int = 1) -> HtmMachine:
    return HtmMachine(ZEC12.with_cpus(max(n, 1)))


class TestPlainOps:
    def test_load_store_roundtrip(self):
        def worker(ctx: Ctx):
            yield from ctx.store(COUNTER, 42)
            value = yield from ctx.load(COUNTER)
            assert value == 42

        machine = make_machine()
        machine.spawn(worker)
        machine.run()

    def test_add_and_cas(self):
        seen = {}

        def worker(ctx: Ctx):
            seen["add"] = yield from ctx.add(COUNTER, 5)
            seen["cas_ok"] = yield from ctx.cas(COUNTER, 5, 9)
            seen["cas_fail"] = yield from ctx.cas(COUNTER, 5, 11)
            seen["final"] = yield from ctx.load(COUNTER)

        machine = make_machine()
        machine.spawn(worker)
        machine.run()
        assert seen == {"add": 5, "cas_ok": True, "cas_fail": False,
                        "final": 9}

    def test_rand_is_bounded_and_deterministic(self):
        values = []

        def worker(ctx: Ctx):
            for _ in range(20):
                values.append((yield from ctx.rand(10)))

        machine = make_machine()
        machine.spawn(worker)
        machine.run()
        assert all(0 <= v < 10 for v in values)

    def test_lock_unlock(self):
        def worker(ctx: Ctx):
            yield from ctx.lock(LOCK)
            value = yield from ctx.load(LOCK)
            assert value == 1
            yield from ctx.unlock(LOCK)

        machine = make_machine()
        machine.spawn(worker)
        machine.run()
        machine.engines[0].quiesce()
        assert machine.memory.read_int(LOCK, 8) == 0


class TestTransactions:
    def test_transaction_commits_and_returns_value(self):
        results = {}

        def body(t: Ctx):
            value = yield from t.load(COUNTER)
            yield from t.store(COUNTER, value + 1)
            return value + 1

        def worker(ctx: Ctx):
            results["r"] = yield from ctx.transaction(body)

        machine = make_machine()
        machine.spawn(worker)
        result = machine.run()
        assert results["r"] == 1
        assert result.total_committed == 1
        machine.engines[0].quiesce()
        assert machine.memory.read_int(COUNTER, 8) == 1

    def test_transaction_without_fallback_raises_on_permanent(self):
        def body(t: Ctx):
            t.engine.tx_abort(257)  # odd: CC3, permanent
            yield

        def worker(ctx: Ctx):
            with pytest.raises(TransactionFailed):
                yield from ctx.transaction(body)

        machine = make_machine()
        machine.spawn(worker)
        machine.run()

    def test_retry_then_fallback_under_elision(self):
        """A body that always TABORTs ends up on the lock-based fallback."""
        attempts = []

        def body(t: Ctx):
            attempts.append(1)
            if len(attempts) <= 10:
                t.engine.tx_abort(256)
            yield from t.store(COUNTER, 7)

        def fallback(t: Ctx):
            yield from t.store(COUNTER, 99)

        def worker(ctx: Ctx):
            yield from ctx.transaction(body, lock=LOCK, fallback=fallback,
                                       max_retries=3)

        machine = make_machine()
        machine.spawn(worker)
        machine.run()
        machine.engines[0].quiesce()
        assert machine.memory.read_int(COUNTER, 8) == 99
        assert machine.memory.read_int(LOCK, 8) == 0  # lock released

    def test_constrained_transaction_retries_until_success(self):
        attempts = []

        def body(t: Ctx):
            attempts.append(1)
            if len(attempts) <= 3:
                # Simulate transient conflicts via TABORT-like abort.
                t.engine._abort_now(AbortCode.FETCH_CONFLICT)
                t.engine.raise_if_pending()
            yield from t.store(COUNTER, 5)

        def worker(ctx: Ctx):
            yield from ctx.transaction(body, constrained=True)

        machine = make_machine()
        machine.spawn(worker)
        result = machine.run()
        assert len(attempts) == 4
        assert result.total_committed == 1
        machine.engines[0].quiesce()
        assert machine.memory.read_int(COUNTER, 8) == 5

    def test_elided_lock_busy_forces_retry(self):
        """One thread holds the lock; the elider aborts (lock busy) until
        the holder releases, then commits transactionally."""
        def holder(ctx: Ctx):
            yield from ctx.lock(LOCK)
            yield from ctx.delay(2_000)
            yield from ctx.unlock(LOCK)

        def body(t: Ctx):
            yield from t.add(COUNTER, 1)

        def elider(ctx: Ctx):
            yield from ctx.delay(200)  # let the holder get the lock
            yield from ctx.transaction(body, lock=LOCK, max_retries=50)

        machine = make_machine(2)
        machine.spawn(holder)
        machine.spawn(elider)
        result = machine.run()
        machine.engines[1].quiesce()
        assert machine.memory.read_int(COUNTER, 8) == 1
        assert result.total_committed >= 1

    def test_concurrent_increment_atomicity(self):
        def body(t: Ctx):
            yield from t.add(COUNTER, 1)

        def worker(ctx: Ctx):
            for _ in range(25):
                yield from ctx.transaction(body, lock=LOCK)

        machine = make_machine(4)
        for _ in range(4):
            machine.spawn(worker)
        machine.run()
        for engine in machine.engines:
            engine.quiesce()
        assert machine.memory.read_int(COUNTER, 8) == 100

    def test_ntstg_through_api(self):
        def body(t: Ctx):
            yield from t.ntstg(COUNTER, 0xAA)
            t.engine.tx_abort(256)
            yield

        def worker(ctx: Ctx):
            with pytest.raises(TransactionFailed):
                yield from ctx.transaction(body, max_retries=1)

        machine = make_machine()
        machine.spawn(worker)
        machine.run()
        machine.engines[0].quiesce()
        assert machine.memory.read_int(COUNTER, 8) == 0xAA


class TestMeasurement:
    def test_marks_recorded(self):
        def worker(ctx: Ctx):
            yield from ctx.mark_start()
            yield from ctx.delay(100)
            yield from ctx.mark_end()

        machine = make_machine()
        machine.spawn(worker)
        result = machine.run()
        assert len(result.cpus[0].intervals) == 1
        assert result.cpus[0].intervals[0] >= 100
