"""Tests for the OS interruption model."""

import pytest

from repro.core.filtering import InterruptionCode, ProgramInterruption
from repro.core.per import PerControl, PerEvent, PerEventType
from repro.cpu.interrupts import OsModel
from repro.cpu.registers import Psw
from repro.errors import MachineStateError
from repro.mem.paging import PageTable


def make_os():
    table = PageTable()
    return OsModel(table), table


def interruption(code, addr=0):
    return ProgramInterruption(code=code, translation_address=addr)


def test_page_fault_pages_in():
    os_model, table = make_os()
    table.unmap(0x5000)
    cost = os_model.handle(
        interruption(InterruptionCode.PAGE_TRANSLATION, 0x5000), Psw(), 0
    )
    assert cost == OsModel.PAGE_IN_COST
    assert table.present(0x5000)
    assert len(os_model.interruptions) == 1


def test_arithmetic_exceptions_resume():
    os_model, _ = make_os()
    for code in (InterruptionCode.FIXED_POINT_DIVIDE,
                 InterruptionCode.FIXED_POINT_OVERFLOW,
                 InterruptionCode.DATA):
        cost = os_model.handle(interruption(code), Psw(), 1)
        assert cost == OsModel.SERVICE_COST


def test_per_event_interruption_serviced():
    os_model, _ = make_os()
    cost = os_model.handle(interruption(InterruptionCode.PER_EVENT), Psw(), 0)
    assert cost == OsModel.SERVICE_COST


def test_constraint_violation_raises_by_default():
    os_model, _ = make_os()
    with pytest.raises(MachineStateError):
        os_model.handle(
            interruption(InterruptionCode.TRANSACTION_CONSTRAINT), Psw(), 0
        )


def test_on_fatal_handler_intercepts():
    os_model, _ = make_os()
    seen = []
    os_model.on_fatal = seen.append
    os_model.handle(
        interruption(InterruptionCode.TRANSACTION_CONSTRAINT), Psw(), 0
    )
    assert len(seen) == 1
    assert seen[0].interruption.code == InterruptionCode.TRANSACTION_CONSTRAINT


def test_unknown_code_raises_without_handler():
    os_model, _ = make_os()
    with pytest.raises(MachineStateError):
        os_model.handle(interruption(0x4444), Psw(), 0)


def test_records_preserve_old_psw():
    os_model, _ = make_os()
    psw = Psw(instruction_address=0x1234, condition_code=2)
    os_model.handle(interruption(InterruptionCode.PAGE_TRANSLATION, 0), psw, 3)
    record = os_model.interruptions[0]
    assert record.old_psw.instruction_address == 0x1234
    assert record.old_psw.condition_code == 2
    assert record.cpu_id == 3
    # The record holds a copy, not the live PSW.
    psw.instruction_address = 0x9999
    assert record.old_psw.instruction_address == 0x1234


def test_per_events_accumulate():
    os_model, _ = make_os()
    os_model.note_per_event(PerEvent(PerEventType.TRANSACTION_END, 0x100))
    os_model.note_per_event(PerEvent(PerEventType.STORAGE_ALTERATION, 0x200))
    assert len(os_model.per_events) == 2
