"""Tests for the repro.sim.metrics registry and its bench wiring."""

import json
import sys

import pytest

from repro.bench.figures import QUICK_CPU_GRID, UpdateExperiment, run_update_experiment
from repro.bench.parallel import (
    ResultCache,
    run_tasks,
    task_key,
)
from repro.bench.report import render_abort_attribution
from repro.params import ZEC12
from repro.sim.machine import Machine
from repro.sim.metrics import (
    SCHEMA,
    MetricsRegistry,
    jsonl_line,
    merge_summaries,
    write_jsonl,
)
from repro.sim.trace import Tracer
from repro.workloads.layout import PoolLayout
from repro.workloads.pool import build_update_program

#: A contended configuration that aborts through several causes.
CONTENDED = UpdateExperiment("tbegin", 8, 10, 4, iterations=15)


def contended_machine(n_cpus=4, iterations=10):
    program = build_update_program("tbegin", PoolLayout(10), n_vars=4,
                                   iterations=iterations)
    machine = Machine(ZEC12.with_cpus(n_cpus))
    for _ in range(n_cpus):
        machine.add_program(program)
    return machine


def assert_reconciles(result):
    """Registry totals must equal the architected CpuResult counters."""
    summary = result.metrics
    assert summary["schema"] == SCHEMA
    totals = summary["totals"]
    assert totals["aborts"] == sum(c.tx_aborted for c in result.cpus)
    assert sum(totals["abort_causes"].values()) == totals["aborts"]
    assert totals["stiff_arms"] == sum(c.xi_rejects for c in result.cpus)
    assert totals["commits"] == sum(c.tx_committed for c in result.cpus)
    assert totals["tbegins"] == sum(c.tx_started for c in result.cpus)
    for cpu_summary, cpu in zip(summary["cpus"], result.cpus):
        assert cpu_summary["aborts"] == cpu.tx_aborted
        assert sum(cpu_summary["abort_causes"].values()) == cpu.tx_aborted
        assert cpu_summary["stiff_arms"] == cpu.xi_rejects
        assert cpu_summary["commits"] == cpu.tx_committed


class TestRegistry:
    def test_off_by_default(self):
        machine = contended_machine(n_cpus=2)
        assert all(e.metrics is None for e in machine.engines)
        result = machine.run()
        assert result.metrics is None

    def test_reconciles_with_cpu_result(self):
        result = run_update_experiment(CONTENDED, metrics=True)
        assert result.metrics["totals"]["aborts"] > 0  # workload contends
        assert_reconciles(result)

    def test_results_identical_with_metrics_on(self):
        plain = run_update_experiment(CONTENDED, metrics=False)
        metered = run_update_experiment(CONTENDED, metrics=True)
        assert plain.cycles == metered.cycles
        assert [c.__dict__ for c in plain.cpus] == [
            c.__dict__ for c in metered.cpus
        ]

    def test_footprints_and_component_stats(self):
        result = run_update_experiment(CONTENDED, metrics=True)
        totals = result.metrics["totals"]
        # The update writes up to 4 variables per transaction.
        commits = totals["write_set_at_commit"]
        assert commits["count"] == totals["commits"]
        assert 1 <= commits["max"] <= 4
        assert totals["read_set_at_commit"]["count"] == totals["commits"]
        assert totals["read_set_at_abort"]["count"] == totals["aborts"]
        assert totals["store_cache_occupancy_hwm"] >= commits["max"]
        assert totals["fabric"]["fetches"] > 0
        assert sum(totals["fetch_sources"].values()) > 0
        assert "l1" in totals["fetch_sources"]

    def test_hang_counter_distributions(self):
        result = run_update_experiment(CONTENDED, metrics=True)
        totals = result.metrics["totals"]
        threshold = ZEC12.tx.xi_reject_threshold
        depths = {int(k) for k in totals["stiff_arm_depths"]}
        assert depths  # stiff-arming happened
        assert max(depths) < threshold
        assert sum(totals["stiff_arm_depths"].values()) == totals["stiff_arms"]
        assert sum(totals["hang_counter_at_abort"].values()) == totals["aborts"]

    def test_detach_stops_collection(self):
        machine = contended_machine(n_cpus=2)
        registry = MetricsRegistry().attach(machine)
        registry.detach()
        assert all(e.metrics is None for e in machine.engines)
        machine.run()
        assert registry.summary()["totals"]["commits"] == 0

    def test_attach_requires_cpus(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            MetricsRegistry().attach(Machine(ZEC12))

    def test_coexists_with_tracer(self):
        machine = contended_machine(n_cpus=2)
        tracer = Tracer(machine, kinds={"commit", "abort"})
        registry = MetricsRegistry().attach(machine)
        result = machine.run()
        summary = registry.summary()
        assert summary["totals"]["commits"] == sum(
            c.tx_committed for c in [machine._cpu_result(i)
                                     for i in range(len(machine.engines))]
        )
        assert tracer.counts()["commit"] == summary["totals"]["commits"]
        assert tracer.counts()["abort"] == summary["totals"]["aborts"]
        assert result.cycles > 0


class TestMergeAndExport:
    def test_merge_is_deterministic_and_additive(self):
        a = run_update_experiment(CONTENDED, metrics=True).metrics
        b = run_update_experiment(
            UpdateExperiment("tbeginc", 4, 10, 4, iterations=10), metrics=True
        ).metrics
        merged = merge_summaries([a, b])
        assert merged["runs"] == 2
        assert merged["totals"]["aborts"] == (
            a["totals"]["aborts"] + b["totals"]["aborts"]
        )
        assert merged["totals"]["stiff_arms"] == (
            a["totals"]["stiff_arms"] + b["totals"]["stiff_arms"]
        )
        hist = merged["totals"]["write_set_at_commit"]
        assert hist["count"] == (
            a["totals"]["write_set_at_commit"]["count"]
            + b["totals"]["write_set_at_commit"]["count"]
        )
        # Pure function of its inputs: merging again is bit-identical.
        assert merge_summaries([a, b]) == merged
        # None entries (e.g. scalar tasks) are skipped.
        assert merge_summaries([None, a, None])["totals"] == \
            merge_summaries([a])["totals"]

    def test_merge_empty(self):
        merged = merge_summaries([])
        assert merged["runs"] == 0
        assert merged["totals"]["aborts"] == 0

    def test_jsonl_round_trip(self, tmp_path):
        summary = run_update_experiment(CONTENDED, metrics=True).metrics
        records = [
            {"record": "run", "point": "tbegin/8cpu", "summary": summary},
            {"record": "aggregate", "summary": merge_summaries([summary])},
        ]
        path = tmp_path / "metrics.jsonl"
        with open(path, "w") as stream:
            assert write_jsonl(records, stream) == 2
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["summary"]["totals"] == summary["totals"]
        assert parsed[1]["record"] == "aggregate"
        # Lines are deterministic (sorted keys).
        assert lines[0] == jsonl_line(records[0])

    def test_render_abort_attribution(self):
        summary = run_update_experiment(CONTENDED, metrics=True).metrics
        text = render_abort_attribution(summary)
        for cause in summary["totals"]["abort_causes"]:
            assert cause in text
        assert "stiff_arms" in text


class TestQuickSweepReconciliation:
    """Satellite: per-cause abort totals reconcile on the quick sweep."""

    TASKS = [
        ("update", UpdateExperiment("tbegin", n, 10, 4, iterations=8))
        for n in QUICK_CPU_GRID[:4]
    ] + [
        ("update", UpdateExperiment("tbeginc", n, 10, 4, iterations=8))
        for n in QUICK_CPU_GRID[:2]
    ]

    def test_serial(self):
        results = run_tasks(self.TASKS, metrics=True)
        assert any(r.metrics["totals"]["aborts"] > 0 for r in results)
        for result in results:
            assert_reconciles(result)

    def test_parallel_matches_serial(self):
        serial = run_tasks(self.TASKS, metrics=True)
        parallel = run_tasks(self.TASKS, workers=2, metrics=True)
        for s, p in zip(serial, parallel):
            assert_reconciles(p)
            # Metrics summaries (not just architected results) are
            # bit-identical across executors.
            assert s.metrics == p.metrics
            assert s.cycles == p.cycles


class TestCacheKey:
    EXPERIMENT = UpdateExperiment("tbegin", 2, 10, 4, iterations=5)

    def test_metrics_flag_changes_key(self):
        off = task_key("update", self.EXPERIMENT, ZEC12, metrics=False)
        on = task_key("update", self.EXPERIMENT, ZEC12, metrics=True)
        assert off != on
        # Default is metrics-off (backwards compatible).
        assert task_key("update", self.EXPERIMENT, ZEC12) == off

    def test_python_version_changes_key(self, monkeypatch):
        before = task_key("update", self.EXPERIMENT, ZEC12)
        monkeypatch.setattr(sys, "version_info", (3, 99, 0, "final", 0))
        assert task_key("update", self.EXPERIMENT, ZEC12) != before

    def test_flipping_metrics_misses_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        tasks = [("update", self.EXPERIMENT)]
        run_tasks(tasks, cache=cache, metrics=False)
        files_off = set(tmp_path.glob("*.json"))
        assert len(files_off) == 1
        # Metrics-on must not be served the metrics-off entry: a second
        # cache file appears and the result carries a summary.
        result_on = run_tasks(tasks, cache=cache, metrics=True)[0]
        assert result_on.metrics is not None
        files_both = set(tmp_path.glob("*.json"))
        assert len(files_both) == 2 and files_off < files_both
        # And the cached metrics-on entry round-trips the summary.
        cached = run_tasks(tasks, cache=cache, metrics=True)[0]
        assert cached.metrics == result_on.metrics
        assert set(tmp_path.glob("*.json")) == files_both


class TestTxLog:
    """The opt-in per-transaction commit/abort log (repro.verify's feed)."""

    def _metered(self, metrics):
        return run_update_experiment(CONTENDED, metrics=metrics)

    def test_absent_unless_opted_in(self):
        machine = contended_machine(n_cpus=2)
        registry = MetricsRegistry().attach(machine)
        machine.run()
        assert "tx_log" not in registry.summary()
        result = self._metered(True)
        assert result.tx_log is None

    def test_absent_without_metrics_at_all(self):
        result = self._metered(False)
        assert result.metrics is None
        assert result.tx_log is None

    def test_entries_reconcile_with_counters(self):
        result = self._metered("tx_log")
        log = result.tx_log
        assert log is not None and log["dropped"] == 0
        commits = [e for e in log["entries"] if e[1] == "commit"]
        aborts = [e for e in log["entries"] if e[1] == "abort"]
        assert len(commits) == sum(c.tx_committed for c in result.cpus)
        assert len(aborts) == sum(c.tx_aborted for c in result.cpus)

    def test_entries_are_json_native(self):
        log = self._metered("tx_log").tx_log
        assert json.loads(json.dumps(log)) == log
        for cpu, kind, tbegin_ia, end_ia, code, constrained, rl, wl in (
                log["entries"]):
            # sw_commit/sw_abort appear when the stm fallback is active
            # (REPRO_FALLBACK_MODE=stm runs of the suite).
            assert kind in ("commit", "abort", "sw_commit", "sw_abort")
            assert constrained in (0, 1)
            assert rl == sorted(rl) and wl == sorted(wl)

    def test_log_is_serialization_order_per_run(self):
        # The scheduler is single-threaded, so two identical runs append
        # identical logs — the property repro.verify's replay rests on.
        assert (self._metered("tx_log").tx_log
                == self._metered("tx_log").tx_log)

    def test_serial_matches_parallel_workers(self):
        tasks = [("update", CONTENDED),
                 ("update", UpdateExperiment("tbeginc", 4, 10, 4,
                                             iterations=8))]
        serial = run_tasks(tasks, workers=1, metrics="tx_log")
        parallel = run_tasks(tasks, workers=3, metrics="tx_log")
        for s, p in zip(serial, parallel):
            assert s.tx_log is not None
            assert s.tx_log == p.tx_log

    def test_limit_sets_dropped_counter(self):
        machine = contended_machine(n_cpus=2)
        registry = MetricsRegistry(tx_log=True, tx_log_limit=3)
        registry.attach(machine)
        machine.run()
        log = registry.summary()["tx_log"]
        assert len(log["entries"]) == 3
        assert log["dropped"] > 0

    def test_merge_drops_per_run_log(self):
        summary = MetricsRegistry(tx_log=True).attach(
            contended_machine(n_cpus=2)).summary()
        assert "tx_log" in summary
        assert "tx_log" not in merge_summaries([summary, summary])
