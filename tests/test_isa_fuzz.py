"""Differential fuzzing of the interpreter's register semantics.

Random straight-line programs of register/arithmetic instructions are
executed both by the simulator and by a direct Python reference model;
the final register files must agree exactly.
"""

from hypothesis import given, settings, strategies as st

from repro.cpu.assembler import assemble
from repro.cpu.isa import (
    AGR,
    AHI,
    CGR,
    HALT,
    LHI,
    LR,
    MSGR,
    NGR,
    OGR,
    SGR,
    SLL,
    SRL,
    XGR,
)
from repro.params import ZEC12
from repro.sim.machine import Machine

MASK = (1 << 64) - 1


def signed(value: int) -> int:
    return value - (1 << 64) if value >> 63 else value


REG = st.integers(min_value=0, max_value=15)
IMM = st.integers(min_value=-32768, max_value=32767)
SHIFT = st.integers(min_value=0, max_value=63)

OP = st.one_of(
    st.tuples(st.just("LHI"), REG, IMM),
    st.tuples(st.just("AHI"), REG, IMM),
    st.tuples(st.just("LR"), REG, REG),
    st.tuples(st.just("AGR"), REG, REG),
    st.tuples(st.just("SGR"), REG, REG),
    st.tuples(st.just("MSGR"), REG, REG),
    st.tuples(st.just("NGR"), REG, REG),
    st.tuples(st.just("OGR"), REG, REG),
    st.tuples(st.just("XGR"), REG, REG),
    st.tuples(st.just("SLL"), REG, SHIFT),
    st.tuples(st.just("SRL"), REG, SHIFT),
    st.tuples(st.just("CGR"), REG, REG),
)

FACTORIES = {
    "LHI": LHI, "AHI": AHI, "LR": LR, "AGR": AGR, "SGR": SGR,
    "MSGR": MSGR, "NGR": NGR, "OGR": OGR, "XGR": XGR, "SLL": SLL,
    "SRL": SRL, "CGR": CGR,
}


def reference_execute(ops):
    """Direct Python model of the same instruction sequence."""
    gr = [0] * 16
    for mnemonic, a, b in ops:
        if mnemonic == "LHI":
            gr[a] = b & MASK
        elif mnemonic == "AHI":
            gr[a] = (signed(gr[a]) + b) & MASK
        elif mnemonic == "LR":
            gr[a] = gr[b]
        elif mnemonic == "AGR":
            gr[a] = (signed(gr[a]) + signed(gr[b])) & MASK
        elif mnemonic == "SGR":
            gr[a] = (signed(gr[a]) - signed(gr[b])) & MASK
        elif mnemonic == "MSGR":
            gr[a] = (gr[a] * gr[b]) & MASK
        elif mnemonic == "NGR":
            gr[a] = gr[a] & gr[b]
        elif mnemonic == "OGR":
            gr[a] = gr[a] | gr[b]
        elif mnemonic == "XGR":
            gr[a] = gr[a] ^ gr[b]
        elif mnemonic == "SLL":
            gr[a] = (gr[a] << b) & MASK
        elif mnemonic == "SRL":
            gr[a] = gr[a] >> b
        elif mnemonic == "CGR":
            pass  # condition code only
    return gr


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(OP, min_size=1, max_size=40))
def test_register_semantics_match_reference(ops):
    program = assemble(
        [FACTORIES[mnemonic](a, b) for mnemonic, a, b in ops] + [HALT()]
    )
    machine = Machine(ZEC12)
    cpu = machine.add_program(program)
    machine.run()
    assert cpu.regs.gr == reference_execute(ops)


@settings(max_examples=30, deadline=None)
@given(ops=st.lists(OP, min_size=1, max_size=25))
def test_execution_is_deterministic(ops):
    def run_once():
        program = assemble(
            [FACTORIES[m](a, b) for m, a, b in ops] + [HALT()]
        )
        machine = Machine(ZEC12)
        cpu = machine.add_program(program)
        result = machine.run()
        return cpu.regs.gr, result.cycles

    first = run_once()
    second = run_once()
    assert first == second
