"""Differential fuzzing of the interpreter's register semantics.

Random straight-line programs of register/arithmetic instructions are
executed both by the simulator and by a direct Python reference model;
the final register files must agree exactly.
"""

from hypothesis import given, settings, strategies as st

from repro.cpu.assembler import assemble
from repro.cpu.isa import (
    AGR,
    AHI,
    CGR,
    HALT,
    LHI,
    LR,
    MSGR,
    NGR,
    OGR,
    SGR,
    SLL,
    SRL,
    XGR,
)
from repro.params import ZEC12
from repro.sim.machine import Machine

MASK = (1 << 64) - 1


def signed(value: int) -> int:
    return value - (1 << 64) if value >> 63 else value


REG = st.integers(min_value=0, max_value=15)
IMM = st.integers(min_value=-32768, max_value=32767)
SHIFT = st.integers(min_value=0, max_value=63)

OP = st.one_of(
    st.tuples(st.just("LHI"), REG, IMM),
    st.tuples(st.just("AHI"), REG, IMM),
    st.tuples(st.just("LR"), REG, REG),
    st.tuples(st.just("AGR"), REG, REG),
    st.tuples(st.just("SGR"), REG, REG),
    st.tuples(st.just("MSGR"), REG, REG),
    st.tuples(st.just("NGR"), REG, REG),
    st.tuples(st.just("OGR"), REG, REG),
    st.tuples(st.just("XGR"), REG, REG),
    st.tuples(st.just("SLL"), REG, SHIFT),
    st.tuples(st.just("SRL"), REG, SHIFT),
    st.tuples(st.just("CGR"), REG, REG),
)

FACTORIES = {
    "LHI": LHI, "AHI": AHI, "LR": LR, "AGR": AGR, "SGR": SGR,
    "MSGR": MSGR, "NGR": NGR, "OGR": OGR, "XGR": XGR, "SLL": SLL,
    "SRL": SRL, "CGR": CGR,
}


def reference_execute(ops):
    """Direct Python model of the same instruction sequence."""
    gr = [0] * 16
    for mnemonic, a, b in ops:
        if mnemonic == "LHI":
            gr[a] = b & MASK
        elif mnemonic == "AHI":
            gr[a] = (signed(gr[a]) + b) & MASK
        elif mnemonic == "LR":
            gr[a] = gr[b]
        elif mnemonic == "AGR":
            gr[a] = (signed(gr[a]) + signed(gr[b])) & MASK
        elif mnemonic == "SGR":
            gr[a] = (signed(gr[a]) - signed(gr[b])) & MASK
        elif mnemonic == "MSGR":
            gr[a] = (gr[a] * gr[b]) & MASK
        elif mnemonic == "NGR":
            gr[a] = gr[a] & gr[b]
        elif mnemonic == "OGR":
            gr[a] = gr[a] | gr[b]
        elif mnemonic == "XGR":
            gr[a] = gr[a] ^ gr[b]
        elif mnemonic == "SLL":
            gr[a] = (gr[a] << b) & MASK
        elif mnemonic == "SRL":
            gr[a] = gr[a] >> b
        elif mnemonic == "CGR":
            pass  # condition code only
    return gr


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(OP, min_size=1, max_size=40))
def test_register_semantics_match_reference(ops):
    program = assemble(
        [FACTORIES[mnemonic](a, b) for mnemonic, a, b in ops] + [HALT()]
    )
    machine = Machine(ZEC12)
    cpu = machine.add_program(program)
    machine.run()
    assert cpu.regs.gr == reference_execute(ops)


@settings(max_examples=30, deadline=None)
@given(ops=st.lists(OP, min_size=1, max_size=25))
def test_execution_is_deterministic(ops):
    def run_once():
        program = assemble(
            [FACTORIES[m](a, b) for m, a, b in ops] + [HALT()]
        )
        machine = Machine(ZEC12)
        cpu = machine.add_program(program)
        result = machine.run()
        return cpu.regs.gr, result.cycles

    first = run_once()
    second = run_once()
    assert first == second


# ---------------------------------------------------------------------------
# Memory-instruction differential fuzzing: LG/LTG/STG/AGSI/CSG against a
# dict-backed reference model, checked over both the final register file
# and the final contents of every touched address in MainMemory.

from repro.cpu.isa import AGSI, CSG, LG, LTG, Mem, STG  # noqa: E402

#: Small fixed pool of 8-byte slots; adjacent pairs share a cache line.
ADDRESSES = [0x40000 + i * 8 for i in range(6)]

SLOT = st.integers(min_value=0, max_value=len(ADDRESSES) - 1)
SI_IMM = st.integers(min_value=-128, max_value=127)

MEM_OP = st.one_of(
    st.tuples(st.just("LHI"), REG, IMM),
    st.tuples(st.just("AHI"), REG, IMM),
    st.tuples(st.just("AGR"), REG, REG),
    st.tuples(st.just("XGR"), REG, REG),
    st.tuples(st.just("LG"), REG, SLOT),
    st.tuples(st.just("LTG"), REG, SLOT),
    st.tuples(st.just("STG"), REG, SLOT),
    st.tuples(st.just("AGSI"), SLOT, SI_IMM),
    st.tuples(st.just("CSG"), REG, REG, SLOT),
)


def build_memory_program(ops):
    items = []
    for op in ops:
        mnemonic = op[0]
        if mnemonic in ("LG", "LTG", "STG"):
            items.append(FACTORIES_MEM[mnemonic](op[1],
                                                 Mem(disp=ADDRESSES[op[2]])))
        elif mnemonic == "AGSI":
            items.append(AGSI(Mem(disp=ADDRESSES[op[1]]), op[2]))
        elif mnemonic == "CSG":
            items.append(CSG(op[1], op[2], Mem(disp=ADDRESSES[op[3]])))
        else:
            items.append(FACTORIES[mnemonic](op[1], op[2]))
    return assemble(items + [HALT()])


FACTORIES_MEM = {"LG": LG, "LTG": LTG, "STG": STG}


def reference_execute_memory(ops):
    """Dict-memory model of the same sequence; memory starts zeroed."""
    gr = [0] * 16
    mem = {}
    for op in ops:
        mnemonic = op[0]
        if mnemonic == "LHI":
            gr[op[1]] = op[2] & MASK
        elif mnemonic == "AHI":
            gr[op[1]] = (signed(gr[op[1]]) + op[2]) & MASK
        elif mnemonic == "AGR":
            gr[op[1]] = (signed(gr[op[1]]) + signed(gr[op[2]])) & MASK
        elif mnemonic == "XGR":
            gr[op[1]] = gr[op[1]] ^ gr[op[2]]
        elif mnemonic in ("LG", "LTG"):
            gr[op[1]] = mem.get(ADDRESSES[op[2]], 0)
        elif mnemonic == "STG":
            mem[ADDRESSES[op[2]]] = gr[op[1]]
        elif mnemonic == "AGSI":
            addr = ADDRESSES[op[1]]
            mem[addr] = (signed(mem.get(addr, 0)) + op[2]) & MASK
        elif mnemonic == "CSG":
            addr = ADDRESSES[op[3]]
            if mem.get(addr, 0) == gr[op[1]]:
                mem[addr] = gr[op[2]]
            else:
                gr[op[1]] = mem.get(addr, 0)
    return gr, mem


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(MEM_OP, min_size=1, max_size=40))
def test_memory_semantics_match_reference(ops):
    machine = Machine(ZEC12)
    cpu = machine.add_program(build_memory_program(ops))
    machine.run()
    machine.engines[0].quiesce()  # drain the store queue to MainMemory
    ref_gr, ref_mem = reference_execute_memory(ops)
    assert cpu.regs.gr == ref_gr
    for addr in ADDRESSES:
        assert machine.memory.read_int(addr, 8) == ref_mem.get(addr, 0), (
            f"memory mismatch at 0x{addr:x}"
        )


@settings(max_examples=25, deadline=None)
@given(ops=st.lists(MEM_OP, min_size=1, max_size=25))
def test_memory_execution_is_deterministic(ops):
    def run_once():
        machine = Machine(ZEC12)
        cpu = machine.add_program(build_memory_program(ops))
        result = machine.run()
        machine.engines[0].quiesce()
        return (cpu.regs.gr, result.cycles,
                [machine.memory.read_int(a, 8) for a in ADDRESSES])

    assert run_once() == run_once()
