"""Unit tests for the transactional state machine."""

import pytest

from repro.core.txstate import (
    CONSTRAINED_CONTROLS,
    TbeginControls,
    TransactionState,
)
from repro.errors import MachineStateError


def test_controls_validation():
    with pytest.raises(MachineStateError):
        TbeginControls(grsm=0x1FF)
    with pytest.raises(MachineStateError):
        TbeginControls(pifc=3)


def test_constrained_controls_are_all_zero():
    assert CONSTRAINED_CONTROLS.grsm == 0
    assert not CONSTRAINED_CONTROLS.allow_ar_modification
    assert not CONSTRAINED_CONTROLS.allow_fpr_modification
    assert CONSTRAINED_CONTROLS.pifc == 0


def test_begin_end_depth():
    state = TransactionState()
    assert not state.active
    assert state.begin(TbeginControls(), constrained=False) == 1
    assert state.active
    assert state.begin(TbeginControls(), constrained=False) == 2
    assert state.end() == 1
    assert state.end() == 0
    assert not state.active


def test_end_without_begin_rejected():
    with pytest.raises(MachineStateError):
        TransactionState().end()


def test_begin_beyond_max_depth_rejected():
    state = TransactionState(max_nesting_depth=2)
    state.begin(TbeginControls(), False)
    state.begin(TbeginControls(), False)
    with pytest.raises(MachineStateError):
        state.begin(TbeginControls(), False)


def test_constrained_flag_set_at_outermost_only():
    state = TransactionState()
    state.begin(TbeginControls(), constrained=True)
    assert state.constrained
    state.begin(TbeginControls(), constrained=False)
    assert state.constrained  # outermost decides


def test_reset_clears_everything():
    state = TransactionState()
    state.begin(TbeginControls(), False)
    state.read_set.add(0x100)
    state.octowords.add(0)
    state.xi_rejects = 5
    state.tbegin_address = 0x1000
    state.reset()
    assert state.depth == 0
    assert state.read_set == set()
    assert state.octowords == set()
    assert state.xi_rejects == 0
    assert state.tbegin_address is None


def test_tdb_address_from_outermost_only():
    state = TransactionState()
    state.begin(TbeginControls(tdb_address=0x8000), False)
    state.begin(TbeginControls(tdb_address=0x9000), False)
    assert state.tdb_address == 0x8000


def test_outermost_requires_active_transaction():
    with pytest.raises(MachineStateError):
        TransactionState().outermost
