"""Data-plane regression tests for the optimized simulator internals.

The PR-3 data-plane overhaul (paged bytearray memory, line-indexed store
forwarding, probe-latency memoization, heap-eliding scheduler loop) must
be *invisible* to the architecture: every simulation stays bit-identical
to the dict-backed implementation. These tests pin the behaviours most
at risk:

* loads that straddle cache lines, store-cache blocks and memory pages;
* partial overlaps between store-queue / store-cache entries and a load;
* the paged :class:`~repro.mem.memory.MainMemory` against a brute-force
  per-byte reference model under randomized mixed-size traffic;
* the probe memo's self-check mode (``REPRO_PROBE_CHECK=1``) over a
  contended simulation;
* exact (cycles, instructions, aborts, xi_rejects) on three sweep
  points, serial and through the parallel runner.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from conftest import EngineHarness

from repro.bench.figures import UpdateExperiment, run_update_experiment
from repro.bench.parallel import run_tasks
from repro.mem.memory import MainMemory, PAGE_BYTES
from repro.params import ZEC12

#: Architected line size and store-cache gathering-block size.
LINE = 256
BLOCK = 128


# ----------------------------------------------------------------------
# straddling accesses through the engine
# ----------------------------------------------------------------------


class TestStraddlingLoads:
    def test_load_straddling_two_lines(self, harness):
        addr = 0x30000 + LINE - 4  # 4 bytes in each line
        harness.memory.write(addr, bytes(range(1, 9)))
        assert harness.load(0, addr) == int.from_bytes(bytes(range(1, 9)),
                                                       "big")

    def test_load_straddling_two_pages(self, harness):
        # PAGE_BYTES is line-aligned, so this crosses a line *and* a
        # memory page of the paged backing store.
        addr = PAGE_BYTES - 4
        harness.memory.write(addr, b"\x11\x22\x33\x44\x55\x66\x77\x88")
        assert harness.load(0, addr) == 0x1122334455667788

    def test_forward_across_block_straddle(self, harness):
        # A buffered store straddling two 128-byte store-cache blocks
        # must forward fully to a load of the same bytes.
        addr = 0x40000 + BLOCK - 4
        harness.store(0, addr, 0xAABBCCDDEEFF0011)
        assert harness.load(0, addr) == 0xAABBCCDDEEFF0011

    def test_partial_forward_merges_with_memory(self, harness):
        # Load overlaps only the tail of a buffered store: the covered
        # bytes come from the store cache, the rest from memory.
        base = 0x50000
        harness.memory.write(base, bytes(range(16)))
        harness.store(0, base, 0x0101010101010101)  # bytes 0..7
        value = harness.load(0, base + 4)  # bytes 4..11
        expected = b"\x01" * 4 + bytes(range(8, 12))
        assert value == int.from_bytes(expected, "big")


class TestPartialOverlapForwarding:
    def test_stq_overrides_store_cache_overrides_memory(self, harness):
        """Byte-precise merge order on one line: memory < cache < STQ."""
        engine = harness.engine(0)
        base = 0x60000
        harness.memory.write(base, bytes(range(1, 17)))
        engine.store_cache.store(base + 4, b"\xaa" * 8, tx=False)  # 4..11
        engine.stq.push(base + 8, b"\xbb" * 4)  # bytes 8..11, younger
        expected = (bytes(range(1, 5)) + b"\xaa" * 4 + b"\xbb" * 4
                    + bytes(range(13, 17)))
        assert engine._read_value(base, 16) == int.from_bytes(expected, "big")
        engine.stq.drain()

    def test_disjoint_entries_on_same_block(self, harness):
        engine = harness.engine(0)
        base = 0x70000
        engine.store_cache.store(base, b"\x11" * 4, tx=False)
        engine.stq.push(base + 8, b"\x22" * 4)
        expected = b"\x11" * 4 + b"\x00" * 4 + b"\x22" * 4 + b"\x00" * 4
        assert engine._read_value(base, 16) == int.from_bytes(expected, "big")
        engine.stq.drain()

    def test_stq_index_survives_invalidate_tx(self, harness):
        """The by-block index stays coherent through the abort path."""
        engine = harness.engine(0)
        base = 0x80000
        engine.stq.push(base, b"\x33" * 8, tx=True)
        engine.stq.push(base + 8, b"\x44" * 8, tx=False)
        dropped = engine.stq.invalidate_tx()
        assert [e.addr for e in dropped] == [base]
        assert engine.stq.forward_byte(base) is None
        assert engine.stq.forward_byte(base + 8) == 0x44
        engine.stq.drain()


# ----------------------------------------------------------------------
# paged memory vs a brute-force reference model
# ----------------------------------------------------------------------


class TestPagedMemoryDifferential:
    def test_randomized_against_byte_map(self):
        rng = random.Random(1234)
        mem = MainMemory()
        ref = {}
        lengths = [1, 2, 3, 4, 8, 16, 32, 255, 256, 1000]
        for _ in range(2000):
            addr = rng.randrange(0, 3 * PAGE_BYTES)
            length = rng.choice(lengths)
            if rng.random() < 0.5:
                data = bytes(rng.randrange(256) for _ in range(length))
                mem.write(addr, data)
                for i, byte in enumerate(data):
                    ref[addr + i] = byte
            else:
                expected = bytes(ref.get(addr + i, 0)
                                 for i in range(length))
                assert mem.read(addr, length) == expected
                assert mem.read_int(addr, length) == int.from_bytes(
                    expected, "big"
                )
        assert mem.footprint() == sum(1 for v in ref.values() if v)

    def test_apply_runs_differential(self):
        rng = random.Random(99)
        mem = MainMemory()
        ref = MainMemory()
        runs = []
        for _ in range(200):
            addr = rng.randrange(PAGE_BYTES - 512, PAGE_BYTES + 512)
            data = bytes(rng.randrange(256)
                         for _ in range(rng.randrange(1, 64)))
            runs.append((addr, data))
            ref.write(addr, data)
        mem.apply_runs(runs)
        lo = PAGE_BYTES - 1024
        assert mem.read(lo, 2048) == ref.read(lo, 2048)


# ----------------------------------------------------------------------
# probe memoization self-check
# ----------------------------------------------------------------------


class TestProbeMemoization:
    def test_contended_sim_under_self_check(self, monkeypatch):
        """With REPRO_PROBE_CHECK=1 every memo hit is re-verified against
        a fresh computation; a stale entry raises ProtocolError."""
        monkeypatch.setenv("REPRO_PROBE_CHECK", "1")
        experiment = UpdateExperiment("tbegin", 8, 4, 4, iterations=5)
        checked = run_update_experiment(experiment)
        monkeypatch.delenv("REPRO_PROBE_CHECK")
        plain = run_update_experiment(experiment)
        assert checked.cycles == plain.cycles
        assert ([c.instructions for c in checked.cpus]
                == [c.instructions for c in plain.cpus])

    def test_memo_serves_hits_and_passes_check(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROBE_CHECK", "1")
        duo = EngineHarness(n_cpus=2)
        line = 0x90000
        # Ping-pong the line so probes repeat between coherence events.
        for i in range(6):
            duo.store(i % 2, line, i)
            duo.load(1 - i % 2, line)
        assert duo.fabric.stats_probe_hits > 0


# ----------------------------------------------------------------------
# bit-identity of whole sweep points
# ----------------------------------------------------------------------

#: (experiment, (cycles, instructions, tx_aborted, xi_rejects)) — exact
#: values pinned from the dict-backed reference implementation; any
#: data-plane change that shifts them is a simulation-semantics bug, not
#: an optimization.  The pins name the *lock* fallback baseline, so the
#: mode is fixed explicitly and a ``REPRO_FALLBACK_MODE=stm`` run of the
#: suite still measures the numbers the pins were taken from.
LOCK_PARAMS = dataclasses.replace(ZEC12, fallback_mode="lock")

PINNED_POINTS = [
    (UpdateExperiment("tbegin", 4, 10, 4, iterations=5),
     (9098, 588, 9, 107)),
    (UpdateExperiment("tbeginc", 8, 10, 4, iterations=5),
     (20410, 873, 47, 252)),
    (UpdateExperiment("coarse", 4, 100, 4, iterations=5),
     (26679, 5084, 0, 0)),
]


def _summary(result):
    return (
        result.cycles,
        sum(c.instructions for c in result.cpus),
        sum(c.tx_aborted for c in result.cpus),
        sum(c.xi_rejects for c in result.cpus),
    )


class TestBitIdentity:
    @pytest.mark.parametrize(
        "experiment,pinned", PINNED_POINTS,
        ids=[e.scheme for e, _ in PINNED_POINTS],
    )
    def test_serial_point_is_pinned(self, experiment, pinned):
        assert _summary(
            run_update_experiment(experiment, params=LOCK_PARAMS)
        ) == pinned

    def test_parallel_runner_matches_pinned(self):
        results = run_tasks(
            [("update", experiment) for experiment, _ in PINNED_POINTS],
            params=LOCK_PARAMS,
            workers=2,
        )
        assert [_summary(r) for r in results] == [
            pinned for _, pinned in PINNED_POINTS
        ]
