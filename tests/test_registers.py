"""Unit tests for the register file and GRSM save/restore."""

import pytest
from hypothesis import given, strategies as st

from repro.cpu.registers import MASK64, Psw, RegisterFile
from repro.errors import MachineStateError


def test_initial_state_zero():
    regs = RegisterFile()
    assert regs.gr == [0] * 16
    assert regs.psw.instruction_address == 0
    assert regs.psw.condition_code == 0


def test_set_get_masks_to_64_bits():
    regs = RegisterFile()
    regs.set_gr(3, 1 << 70)
    assert regs.get_gr(3) == (1 << 70) & MASK64


def test_signed_view():
    regs = RegisterFile()
    regs.set_gr(1, -5)
    assert regs.get_gr(1) == MASK64 - 4
    assert regs.get_gr_signed(1) == -5
    regs.set_gr(2, 5)
    assert regs.get_gr_signed(2) == 5


def test_index_bounds_checked():
    regs = RegisterFile()
    with pytest.raises(MachineStateError):
        regs.get_gr(16)
    with pytest.raises(MachineStateError):
        regs.set_gr(-1, 0)


def test_save_pairs_bit0_is_most_significant():
    """Bit i of the GRSM (bit 0 = MSB) covers the pair (2i, 2i+1),
    matching the instruction-field convention."""
    regs = RegisterFile()
    for i in range(16):
        regs.set_gr(i, 100 + i)
    backup = regs.save_pairs(0x80)  # bit 0 only -> pair (0, 1)
    assert backup == {0: (100, 101)}
    backup = regs.save_pairs(0x01)  # bit 7 only -> pair (14, 15)
    assert backup == {7: (114, 115)}


def test_restore_pairs_leaves_unsaved_registers_alone():
    regs = RegisterFile()
    for i in range(16):
        regs.set_gr(i, i)
    backup = regs.save_pairs(0xC0)  # pairs (0,1) and (2,3)
    for i in range(16):
        regs.set_gr(i, 99)
    regs.restore_pairs(backup)
    assert regs.gr[:4] == [0, 1, 2, 3]
    assert regs.gr[4:] == [99] * 12


def test_psw_copy_is_independent():
    psw = Psw(instruction_address=0x100, condition_code=2)
    copy = psw.copy()
    psw.instruction_address = 0x200
    assert copy.instruction_address == 0x100


def test_snapshot_is_a_copy():
    regs = RegisterFile()
    snap = regs.snapshot_gr()
    regs.set_gr(0, 7)
    assert snap[0] == 0


@given(grsm=st.integers(min_value=0, max_value=0xFF),
       values=st.lists(st.integers(min_value=0, max_value=MASK64),
                       min_size=16, max_size=16),
       clobber=st.lists(st.integers(min_value=0, max_value=MASK64),
                        min_size=16, max_size=16))
def test_save_restore_roundtrip_property(grsm, values, clobber):
    """For any mask: after save/clobber/restore, registers in saved pairs
    hold their pre-save values; all others hold the clobbered values."""
    regs = RegisterFile()
    for i, v in enumerate(values):
        regs.set_gr(i, v)
    backup = regs.save_pairs(grsm)
    for i, v in enumerate(clobber):
        regs.set_gr(i, v)
    regs.restore_pairs(backup)
    for pair in range(8):
        saved = bool(grsm & (0x80 >> pair))
        for reg in (2 * pair, 2 * pair + 1):
            expected = values[reg] if saved else clobber[reg]
            assert regs.get_gr(reg) == expected
