"""Tests for the scale-out sweep fabric (:mod:`repro.serve`).

The contract under test is the same one the whole bench stack rests on:
**serial == parallel == remote, bit-identical payloads**. Concurrency
here is real — services run on a background event-loop thread, clients
are OS threads, workers speak the wire protocol over sockets — and the
assertions are exact: each unique task key computed exactly once no
matter how many clients race, every client's stream equal to a serial
``run_tasks`` run, died workers requeued without duplicate results.
"""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.bench.figures import UpdateExperiment
from repro.bench.parallel import (
    FootprintTask,
    ResultCache,
    code_version,
    result_to_payload,
    run_tasks,
    set_code_version,
    task_key,
)
from repro.params import ZEC12
from repro.serve import protocol
from repro.serve.client import ServiceError, SweepClient, wait_ready
from repro.serve.protocol import ProtocolError
from repro.serve.service import ServiceThread
from repro.serve.store import ResultStore, atomic_write_json
from repro.serve.worker import WorkerAgent, WorkerRejected
from repro.workloads.hashtable import HashtableExperiment
from repro.workloads.stamp import VacationExperiment

# A small but heterogeneous sweep: three task kinds, including a
# contended lock point and a scalar footprint point.
SWEEP = [
    ("update", UpdateExperiment("tbegin", 2, 10, 1, iterations=5)),
    ("update", UpdateExperiment("coarse", 3, 10, 4, iterations=4)),
    ("hashtable", HashtableExperiment(2, elide=True, operations=6)),
    ("vacation", VacationExperiment(2, use_tx=True, sessions=3)),
    ("footprint", FootprintTask(120, False, trials=3)),
]


def canonical(payloads):
    return [json.dumps(payload, sort_keys=True) for payload in payloads]


def serial_payloads(tasks, metrics=False):
    results = run_tasks(tasks, metrics=metrics)
    out = []
    for (kind, _experiment), result in zip(tasks, results):
        if kind == "footprint":
            out.append({"type": "scalar", "value": result})
        else:
            out.append(result_to_payload(result))
    return out


@pytest.fixture()
def host():
    with ServiceThread(local_workers=2) as service_host:
        yield service_host


# ----------------------------------------------------------------------
# store tiering
# ----------------------------------------------------------------------


class TestResultStore:
    PAYLOAD = {"type": "scalar", "value": 42}

    def test_memory_tier_hit(self):
        store = ResultStore(root=None)
        store.put("k", self.PAYLOAD)
        assert store.get("k") == self.PAYLOAD
        assert store.stats.memory_hits == 1
        assert store.get("absent") is None
        assert store.stats.misses == 1

    def test_disk_tier_survives_memory_eviction(self, tmp_path):
        store = ResultStore(root=str(tmp_path), memory_entries=1)
        store.put("a", self.PAYLOAD)
        store.put("b", {"type": "scalar", "value": 7})  # evicts "a"
        assert store.get("a") == self.PAYLOAD
        assert store.stats.disk_hits == 1
        # The hit was promoted back into memory.
        assert store.get("a") == self.PAYLOAD
        assert store.stats.memory_hits == 1

    def test_lru_eviction_order(self):
        store = ResultStore(root=None, memory_entries=2)
        store.put("a", self.PAYLOAD)
        store.put("b", self.PAYLOAD)
        store.get("a")                      # refresh "a"
        store.put("c", self.PAYLOAD)        # evicts "b", not "a"
        assert store.get("a") is not None
        assert store.get("b") is None

    def test_remote_tier_read_through_promotes(self, tmp_path):
        local = tmp_path / "local"
        remote = tmp_path / "remote"
        producer = ResultStore(root=None, memory_entries=0,
                               remote_root=str(remote))
        producer.put("k", self.PAYLOAD)
        consumer = ResultStore(root=str(local), remote_root=str(remote))
        assert consumer.get("k") == self.PAYLOAD
        assert consumer.stats.remote_hits == 1
        assert consumer.stats.promotions == 1
        # Promoted into the local disk tier: a remote-less reader now hits.
        assert ResultStore(root=str(local),
                           remote_root="").get("k") == self.PAYLOAD

    def test_remote_tier_from_environment(self, tmp_path, monkeypatch):
        remote = tmp_path / "shared"
        monkeypatch.setenv("REPRO_BENCH_CACHE_REMOTE", str(remote))
        ResultStore(root=None).put("k", self.PAYLOAD)
        assert ResultStore(root=None, memory_entries=0).get("k") \
            == self.PAYLOAD

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        store = ResultStore(root=str(tmp_path), memory_entries=0)
        store.put("k", self.PAYLOAD)
        (tmp_path / "k.json").write_text("{ torn mid-wri")
        assert store.get("k") is None
        assert store.stats.corrupt_entries == 1

    def test_wrong_shape_entry_is_a_miss(self, tmp_path):
        store = ResultStore(root=str(tmp_path), memory_entries=0)
        (tmp_path / "k.json").write_text('["not", "a", "payload"]')
        assert store.get("k") is None

    def test_atomic_write_leaves_no_tmp_droppings(self, tmp_path):
        path = str(tmp_path / "x.json")
        atomic_write_json(path, self.PAYLOAD)
        atomic_write_json(path, self.PAYLOAD)
        assert os.listdir(tmp_path) == ["x.json"]

    def test_concurrent_same_key_writers(self, tmp_path):
        """Racing writers (threads) never leave a torn entry."""
        store = ResultStore(root=str(tmp_path), memory_entries=0)
        payload = {"type": "scalar", "value": list(range(500))}
        threads = [threading.Thread(target=store.put, args=("k", payload))
                   for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert store.get("k") == payload
        assert [name for name in os.listdir(tmp_path)
                if ".tmp." in name] == []


class TestResultCacheHardening:
    def test_put_is_atomic_and_unique_tmp(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("k", {"type": "scalar", "value": 1})
        cache.put("k", {"type": "scalar", "value": 2})
        assert cache.get("k") == {"type": "scalar", "value": 2}
        assert [name for name in os.listdir(tmp_path)
                if ".tmp." in name] == []

    def test_get_tolerates_torn_json(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        (tmp_path / "k.json").write_text('{"type": "sim", "cycles": 12')
        assert cache.get("k") is None

    def test_get_tolerates_wrong_shape(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        (tmp_path / "k.json").write_text("[1, 2, 3]")
        assert cache.get("k") is None


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------


class TestProtocol:
    def test_task_round_trip_every_kind(self):
        for task in SWEEP:
            assert protocol.task_from_wire(protocol.task_to_wire(task)) \
                == task

    def test_params_round_trip(self):
        assert protocol.params_from_wire(
            protocol.params_to_wire(ZEC12)) == ZEC12

    def test_job_round_trip_preserves_key(self):
        kind, experiment = SWEEP[0]
        wire = protocol.job_to_wire(kind, experiment, ZEC12, False)
        wire = json.loads(json.dumps(wire))  # through the wire
        kind2, experiment2, params2, metrics2 = protocol.job_from_wire(wire)
        assert task_key(kind, experiment, ZEC12) \
            == task_key(kind2, experiment2, params2, metrics=metrics2)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.task_from_wire({"kind": "bogus", "experiment": {}})

    def test_encode_is_canonical_one_line(self):
        blob = protocol.encode({"b": 1, "a": {"y": 2, "x": 3}})
        assert blob == b'{"a":{"x":3,"y":2},"b":1}\n'

    def test_parse_address(self):
        assert protocol.parse_address("unix:/tmp/x.sock") \
            == ("unix", "/tmp/x.sock")
        assert protocol.parse_address("127.0.0.1:8637") \
            == ("tcp", ("127.0.0.1", 8637))
        assert protocol.parse_address(":0") == ("tcp", ("127.0.0.1", 0))
        with pytest.raises(ProtocolError):
            protocol.parse_address("no-port")


# ----------------------------------------------------------------------
# service: determinism and single-flight
# ----------------------------------------------------------------------


class TestServiceDeterminism:
    def test_service_bit_identical_to_serial(self, host):
        expected = canonical(serial_payloads(SWEEP))
        with SweepClient(host.address) as client:
            assert canonical(client.run_payloads(SWEEP)) == expected

    def test_store_round_trip_stays_identical(self, host):
        expected = canonical(serial_payloads(SWEEP))
        with SweepClient(host.address) as client:
            assert canonical(client.run_payloads(SWEEP)) == expected
            # Second submission: all served from the store, same bytes.
            assert canonical(client.run_payloads(SWEEP)) == expected
            stats = client.stats()["service"]
        assert stats["computed"] == len(SWEEP)
        assert stats["store_served"] == len(SWEEP)

    def test_metrics_sweep_matches_serial(self, host):
        tasks = SWEEP[:2]
        expected = canonical(serial_payloads(tasks, metrics=True))
        with SweepClient(host.address) as client:
            assert canonical(client.run_payloads(tasks, metrics=True)) \
                == expected

    def test_metrics_merge_service_matches_serial(self, host):
        # The ROADMAP sweep-fabric follow-on: metrics JSONL streamed
        # through the service path must aggregate bit-identically to a
        # serial sweep — same summaries, same submission order, same
        # pure merge.
        from repro.sim.metrics import merge_summaries

        tasks = SWEEP[:3]
        expected = merge_summaries(
            r.metrics for r in run_tasks(tasks, metrics=True)
        )
        with SweepClient(host.address) as client:
            remote = client.run_tasks(tasks, metrics=True)
        merged = merge_summaries(r.metrics for r in remote)
        assert json.dumps(merged, sort_keys=True) == json.dumps(
            expected, sort_keys=True
        )

    def test_sched_counters_ride_the_wire(self, host):
        # The event-composition split (events / virtual_events /
        # fast_forwarded_events) must survive the payload round-trip so
        # service sweeps expose the same self-observability as local
        # runs.
        tasks = SWEEP[:2]
        serial = run_tasks(tasks)
        with SweepClient(host.address) as client:
            remote = client.run_tasks(tasks)
        for local, wire in zip(serial, remote):
            assert wire.sched == local.sched
        assert remote[1].sched["events"] > 0
        assert "virtual_events" in remote[1].sched
        assert "fast_forwarded_events" in remote[1].sched

    def test_metrics_and_plain_are_distinct_keys(self, host):
        tasks = SWEEP[:1]
        with SweepClient(host.address) as client:
            client.run_payloads(tasks)
            client.run_payloads(tasks, metrics=True)
            stats = client.stats()["service"]
        assert stats["computed"] == 2  # no false store hit across modes

    def test_duplicate_points_within_one_request(self, host):
        tasks = [SWEEP[0], SWEEP[1], SWEEP[0], SWEEP[0]]
        expected = canonical(serial_payloads(tasks))
        with SweepClient(host.address) as client:
            assert canonical(client.run_payloads(tasks)) == expected
            stats = client.stats()["service"]
        assert stats["computed"] == 2
        assert stats["coalesced"] == 2

    def test_concurrent_identical_sweeps_single_flight(self, host):
        """The duplicate storm: N clients, each key computed once."""
        n_clients = 8
        expected = canonical(serial_payloads(SWEEP))
        streams = [None] * n_clients
        errors = []

        def one_client(slot):
            try:
                with SweepClient(host.address) as client:
                    streams[slot] = canonical(client.run_payloads(SWEEP))
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=one_client, args=(i,))
                   for i in range(n_clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for stream in streams:
            assert stream == expected
        stats = host.service.counters
        assert stats["computed"] == len(SWEEP)
        assert stats["points_requested"] == n_clients * len(SWEEP)

    def test_concurrent_overlapping_sweeps(self, host):
        """Different-but-overlapping task lists still dedupe exactly."""
        sweeps = [SWEEP, SWEEP[1:] + SWEEP[:1], SWEEP[:3], SWEEP[2:]]
        expected = [canonical(serial_payloads(tasks)) for tasks in sweeps]
        outcomes = [None] * len(sweeps)

        def one_client(slot):
            with SweepClient(host.address) as client:
                outcomes[slot] = canonical(
                    client.run_payloads(sweeps[slot]))

        threads = [threading.Thread(target=one_client, args=(i,))
                   for i in range(len(sweeps))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert outcomes == expected
        assert host.service.counters["computed"] == len(SWEEP)

    def test_empty_sweep(self, host):
        with SweepClient(host.address) as client:
            assert client.run_payloads([]) == []

    def test_bad_task_reports_error(self, host):
        with SweepClient(host.address) as client:
            client._request_seq += 1
            client._connected().send({
                "type": "sweep", "id": "bad", "params": {},
                "metrics": False,
                "tasks": [{"kind": "bogus", "experiment": {}}],
            })
            reply = client._connected().recv()
        assert reply["type"] == "error"

    def test_stream_log_records_points(self, host, tmp_path):
        log_path = str(tmp_path / "stream.jsonl")
        with SweepClient(host.address, stream_log=log_path) as client:
            client.run_payloads(SWEEP[:2])
        records = [json.loads(line)
                   for line in open(log_path).read().splitlines()]
        assert len(records) == 2
        assert {record["index"] for record in records} == {0, 1}
        assert all(record["record"] == "point" for record in records)


# ----------------------------------------------------------------------
# cancellation
# ----------------------------------------------------------------------


class TestCancellation:
    def test_cancel_unblocks_and_drops_pending(self):
        # No execution lanes at all: everything stays pending forever,
        # so cancel is the only way the request ends.
        with ServiceThread(local_workers=0) as host:
            with SweepClient(host.address) as client:
                stream = client._connected()
                stream.send({
                    "type": "sweep", "id": "r1",
                    "params": protocol.params_to_wire(ZEC12),
                    "metrics": False,
                    "tasks": [protocol.task_to_wire(task)
                              for task in SWEEP[:2]],
                })
                stream.send({"type": "cancel", "id": "r1"})
                reply = stream.recv()
                assert reply == {"type": "cancelled", "id": "r1"}
                # The service remains fully usable afterwards.
                assert client.ping()["type"] == "pong"
                stats = client.stats()["service"]
            assert stats["cancelled"] == 1

    def test_disconnect_acts_as_cancel(self):
        with ServiceThread(local_workers=0) as host:
            client = SweepClient(host.address)
            client._connected().send({
                "type": "sweep", "id": "r1",
                "params": protocol.params_to_wire(ZEC12),
                "metrics": False,
                "tasks": [protocol.task_to_wire(SWEEP[0])],
            })
            client.close()
            # A worker now connecting and leasing must find the pending
            # point dropped (no waiters) rather than computing it.
            with SweepClient(host.address) as probe:
                wait_ready(host.address)
                deadline = 50
                while probe.stats()["service"]["cancelled"] == 0 \
                        and deadline:
                    deadline -= 1
                    threading.Event().wait(0.05)
                assert probe.stats()["service"]["cancelled"] == 1


# ----------------------------------------------------------------------
# workers
# ----------------------------------------------------------------------


class TestWorkers:
    def test_worker_serves_sweep_bit_identically(self):
        expected = canonical(serial_payloads(SWEEP))
        with ServiceThread(local_workers=0) as host:
            agent = WorkerAgent(host.address, name="w0", batch=2)
            thread = threading.Thread(target=agent.run, daemon=True)
            thread.start()
            with SweepClient(host.address) as client:
                assert canonical(client.run_payloads(SWEEP)) == expected
                stats = client.stats()["service"]
            assert stats["computed"] == len(SWEEP)
            assert stats["leases"] >= 1
            assert stats["workers_seen"] == 1

    def test_version_mismatch_rejected(self):
        with ServiceThread(local_workers=0) as host:
            with pytest.raises(WorkerRejected):
                WorkerAgent(host.address, version="stale-code").run()
            assert host.service.counters["version_rejects"] == 1

    def test_worker_death_mid_lease_requeues(self):
        """A worker that takes a lease and dies never loses the task —
        and the eventual result is computed exactly once."""
        tasks = SWEEP[:2]
        expected = canonical(serial_payloads(tasks))
        with ServiceThread(local_workers=0) as host:
            outcome = {}

            def client_side():
                with SweepClient(host.address, timeout=60) as client:
                    outcome["payloads"] = canonical(
                        client.run_payloads(tasks))

            client_thread = threading.Thread(target=client_side,
                                             daemon=True)
            client_thread.start()

            # A doomed worker: hello, take the lease, drop dead.
            doomed = protocol.connect(host.address, timeout=30)
            doomed.send({"type": "worker-hello", "name": "doomed",
                         "code_version": code_version(), "batch": 4})
            assert doomed.recv()["type"] == "welcome"
            lease = doomed.recv()
            assert lease["type"] == "lease"
            assert len(lease["jobs"]) >= 1
            doomed.close()

            # A live worker picks up the requeued tasks.
            survivor = WorkerAgent(host.address, name="survivor")
            survivor_thread = threading.Thread(target=survivor.run,
                                               daemon=True)
            survivor_thread.start()
            client_thread.join(timeout=120)
            assert not client_thread.is_alive()
            assert outcome["payloads"] == expected
            stats = host.service.counters
            assert stats["requeues"] >= 1
            # Exactly one completion per key despite the requeue.
            assert stats["computed"] == len(tasks)

    def test_worker_result_count_mismatch_is_protocol_error(self):
        with ServiceThread(local_workers=0) as host:
            done = {}

            def client_side():
                with SweepClient(host.address, timeout=60) as client:
                    done["payloads"] = client.run_payloads(SWEEP[:1])

            thread = threading.Thread(target=client_side, daemon=True)
            thread.start()
            bad = protocol.connect(host.address, timeout=30)
            bad.send({"type": "worker-hello", "name": "bad",
                      "code_version": code_version(), "batch": 4})
            assert bad.recv()["type"] == "welcome"
            lease = bad.recv()
            bad.send({"type": "result", "lease": lease["lease"],
                      "payloads": []})  # wrong count
            # The service must requeue and eventually serve via a good
            # worker.
            good = WorkerAgent(host.address, name="good")
            threading.Thread(target=good.run, daemon=True).start()
            thread.join(timeout=120)
            assert not thread.is_alive()
            assert done["payloads"]
            bad.close()


# ----------------------------------------------------------------------
# code-version seeding (satellite)
# ----------------------------------------------------------------------


class TestCodeVersionSeeding:
    def test_set_code_version_short_circuits(self):
        import repro.bench.parallel as parallel_module
        saved = parallel_module._CODE_VERSION
        try:
            set_code_version("feedfacecafebeef")
            assert code_version() == "feedfacecafebeef"
        finally:
            parallel_module._CODE_VERSION = saved

    def test_environment_seed_wins(self, monkeypatch):
        import repro.bench.parallel as parallel_module
        saved = parallel_module._CODE_VERSION
        try:
            parallel_module._CODE_VERSION = None
            monkeypatch.setenv("REPRO_CODE_VERSION", "0123456789abcdef")
            assert code_version() == "0123456789abcdef"
        finally:
            parallel_module._CODE_VERSION = saved

    def test_worker_agent_computes_version_once(self):
        agent = WorkerAgent.__new__(WorkerAgent)
        agent.version = code_version()
        assert agent.version == code_version()  # cached, not re-hashed


# ----------------------------------------------------------------------
# run_figures integration: the --service path is the same math
# ----------------------------------------------------------------------


class TestSweepThroughService:
    def test_parallel_sweep_runner_matches_local(self, host):
        from repro.bench.parallel import parallel_sweep

        schemes, grid = ["coarse", "tbeginc"], (2, 4)
        reference = parallel_sweep(schemes, grid, 10, 4, iterations=6)
        with SweepClient(host.address) as client:
            via_service = parallel_sweep(schemes, grid, 10, 4,
                                         iterations=6,
                                         runner=client.run_tasks)
        assert via_service == reference
