"""Unit tests for the L1 cache model and the LRU-extension vector."""

from repro.mem.l1 import L1Cache
from repro.mem.line import Ownership
from repro.params import CacheGeometry

GEO = CacheGeometry(ways=2, rows=4, line_size=256)


def line_for_row(row: int, k: int = 0) -> int:
    return (row + k * GEO.rows) * GEO.line_size


def make_l1(extension: bool = True) -> L1Cache:
    return L1Cache(GEO, lru_extension_enabled=extension)


def test_mark_tx_bits():
    l1 = make_l1()
    line = line_for_row(0)
    l1.directory.install(line, Ownership.EXCLUSIVE)
    l1.mark_tx_read(line)
    l1.mark_tx_dirty(line)
    entry = l1.lookup(line)
    assert entry.tx_read and entry.tx_dirty


def test_mark_on_absent_line_is_noop():
    l1 = make_l1()
    l1.mark_tx_read(0x100)   # no crash, nothing installed
    l1.mark_tx_dirty(0x100)
    assert l1.lookup(0x100) is None


def test_begin_transaction_resets_tx_bits_and_extension():
    l1 = make_l1()
    line = line_for_row(1)
    l1.directory.install(line, Ownership.READ_ONLY)
    l1.mark_tx_read(line)
    l1.note_eviction(l1.lookup(line))
    assert l1.extension_rows() == 1
    l1.begin_transaction()
    assert l1.extension_rows() == 0
    assert not l1.lookup(line).tx_read


def test_eviction_of_tx_read_line_sets_extension_row():
    l1 = make_l1()
    line = line_for_row(2)
    l1.directory.install(line, Ownership.READ_ONLY)
    l1.mark_tx_read(line)
    victim = l1.directory.remove(line)
    l1.note_eviction(victim)
    # Any line mapping to the same row now hits the (imprecise) extension.
    other = line_for_row(2, k=5)
    assert l1.extension_hit(other)
    assert l1.read_set_conflict(other)
    # Other rows are unaffected.
    assert not l1.extension_hit(line_for_row(3))


def test_eviction_without_extension_loses_footprint():
    l1 = make_l1(extension=False)
    line = line_for_row(0)
    l1.directory.install(line, Ownership.READ_ONLY)
    l1.mark_tx_read(line)
    l1.note_eviction(l1.directory.remove(line))
    assert l1.footprint_lost
    assert not l1.extension_hit(line)


def test_eviction_of_non_tx_line_is_harmless():
    l1 = make_l1(extension=False)
    line = line_for_row(0)
    l1.directory.install(line, Ownership.READ_ONLY)
    l1.note_eviction(l1.directory.remove(line))
    assert not l1.footprint_lost
    assert l1.extension_rows() == 0


def test_tx_dirty_eviction_needs_no_extension():
    """Paper: no LRU-extension action is needed when a tx-dirty cache
    line is LRU'ed from the L1 (the store cache tracks the write set)."""
    l1 = make_l1()
    line = line_for_row(1)
    l1.directory.install(line, Ownership.EXCLUSIVE)
    l1.mark_tx_dirty(line)
    l1.note_eviction(l1.directory.remove(line))
    assert l1.extension_rows() == 0
    assert not l1.footprint_lost


def test_abort_invalidates_only_tx_dirty_lines():
    l1 = make_l1()
    dirty = line_for_row(0)
    clean = line_for_row(1)
    l1.directory.install(dirty, Ownership.EXCLUSIVE)
    l1.directory.install(clean, Ownership.READ_ONLY)
    l1.mark_tx_dirty(dirty)
    l1.mark_tx_read(clean)
    killed = l1.abort_transaction()
    assert [e.line for e in killed] == [dirty]
    assert l1.lookup(dirty) is None
    assert l1.lookup(clean) is not None
    assert not l1.lookup(clean).tx_read  # tx state cleared


def test_read_set_conflict_checks_precise_bit_first():
    l1 = make_l1()
    line = line_for_row(3)
    l1.directory.install(line, Ownership.READ_ONLY)
    l1.mark_tx_read(line)
    assert l1.read_set_conflict(line)
    assert not l1.write_set_conflict(line)


def test_write_set_conflict():
    l1 = make_l1()
    line = line_for_row(3)
    l1.directory.install(line, Ownership.EXCLUSIVE)
    l1.mark_tx_dirty(line)
    assert l1.write_set_conflict(line)
