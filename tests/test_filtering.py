"""Unit tests for program-interruption filtering (PIFC)."""

import pytest

from repro.core.filtering import (
    ExceptionGroup,
    InterruptionCode,
    ProgramInterruption,
    is_filtered,
)


def interruption(code, instruction_fetch=False):
    return ProgramInterruption(code=code, instruction_fetch=instruction_fetch)


@pytest.mark.parametrize("code,group", [
    (InterruptionCode.OPERATION, ExceptionGroup.ALWAYS_INTERRUPTS),
    (InterruptionCode.PRIVILEGED_OPERATION, ExceptionGroup.NEVER_IN_TRANSACTION),
    (InterruptionCode.FIXED_POINT_DIVIDE, ExceptionGroup.DATA_ARITHMETIC),
    (InterruptionCode.FIXED_POINT_OVERFLOW, ExceptionGroup.DATA_ARITHMETIC),
    (InterruptionCode.PAGE_TRANSLATION, ExceptionGroup.ACCESS),
    (InterruptionCode.SEGMENT_TRANSLATION, ExceptionGroup.ACCESS),
    (InterruptionCode.TRANSACTION_CONSTRAINT, ExceptionGroup.ALWAYS_INTERRUPTS),
    (InterruptionCode.PER_EVENT, ExceptionGroup.ALWAYS_INTERRUPTS),
])
def test_exception_groups(code, group):
    assert interruption(code).group is group


def test_unknown_code_defaults_to_always_interrupts():
    assert interruption(0x7777).group is ExceptionGroup.ALWAYS_INTERRUPTS


class TestPifc:
    def test_pifc0_filters_nothing(self):
        assert not is_filtered(interruption(InterruptionCode.FIXED_POINT_DIVIDE), 0)
        assert not is_filtered(interruption(InterruptionCode.PAGE_TRANSLATION), 0)

    def test_pifc1_filters_group4_only(self):
        assert is_filtered(interruption(InterruptionCode.FIXED_POINT_DIVIDE), 1)
        assert not is_filtered(interruption(InterruptionCode.PAGE_TRANSLATION), 1)

    def test_pifc2_filters_groups_3_and_4(self):
        assert is_filtered(interruption(InterruptionCode.FIXED_POINT_DIVIDE), 2)
        assert is_filtered(interruption(InterruptionCode.PAGE_TRANSLATION), 2)

    def test_always_interrupting_groups_never_filtered(self):
        for pifc in (0, 1, 2):
            assert not is_filtered(
                interruption(InterruptionCode.TRANSACTION_CONSTRAINT), pifc
            )
            assert not is_filtered(
                interruption(InterruptionCode.OPERATION), pifc
            )

    def test_instruction_fetch_exceptions_never_filtered(self):
        """"Exceptions related to instruction fetching are never
        filtered" — a code page fault must reach the OS."""
        fault = interruption(InterruptionCode.PAGE_TRANSLATION,
                             instruction_fetch=True)
        for pifc in (0, 1, 2):
            assert not is_filtered(fault, pifc)
