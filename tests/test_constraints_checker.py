"""Unit tests for the static constrained-transaction checker."""

from repro.core.constraints import check_constrained_block
from repro.cpu.assembler import assemble
from repro.cpu.isa import (
    AGSI,
    AHI,
    CIJ,
    DSG,
    J,
    JNZ,
    LG,
    LHI,
    Mem,
    NOPR,
    TBEGIN,
    TBEGINC,
    TEND,
)


def check(items, **kwargs):
    program = assemble(items, base=0x1000)
    tbeginc = next(
        loc.address for loc in program
        if loc.instruction.mnemonic == "TBEGINC"
    )
    return check_constrained_block(program, tbeginc, **kwargs)


def test_conforming_block():
    report = check([
        TBEGINC(),
        LG(1, Mem(disp=0x100)),
        AHI(1, 1),
        AGSI(Mem(disp=0x100), 1),
        TEND(),
    ])
    assert report.ok
    assert report.instruction_count == 3


def test_double_linked_list_insert_conforms():
    """The paper: "many common operations like double-linked list-insert/
    delete operations can be performed"."""
    node, prev, nxt = 0x1000_00, 0x2000_00, 0x3000_00
    report = check([
        TBEGINC(),
        LHI(1, node),
        AGSI(Mem(disp=prev + 8), 0),   # prev->next = node (simplified RMW)
        AGSI(Mem(disp=nxt + 16), 0),   # next->prev = node
        AGSI(Mem(disp=node), 0),
        TEND(),
    ])
    assert report.ok


def test_too_many_instructions():
    body = [AHI(1, 1)] * 33
    report = check([TBEGINC(), *body, TEND()])
    assert not report.ok
    assert any("instructions exceed" in v for v in report.violations)


def test_itext_window_exceeded():
    body = [LG(1, Mem(disp=0x100))] * 45  # 45 x 6 bytes = 270 > 256
    report = check([TBEGINC(), *body, TEND()])
    assert any("bytes" in v for v in report.violations)


def test_backward_branch_rejected():
    report = check([
        TBEGINC(),
        ("loop", AHI(1, -1)),
        JNZ("loop"),
        TEND(),
    ])
    assert any("backward branch" in v for v in report.violations)


def test_forward_branch_allowed():
    report = check([
        TBEGINC(),
        CIJ(1, 0, 8, "skip"),
        AHI(1, 1),
        ("skip", NOPR()),
        TEND(),
    ])
    assert report.ok


def test_restricted_instruction_flagged():
    report = check([TBEGINC(), DSG(1, 2), TEND()])
    assert any("DSG" in v for v in report.violations)


def test_nested_tbegin_flagged():
    report = check([TBEGINC(), TBEGIN(), TEND(), TEND()])
    assert any("TBEGIN" in v for v in report.violations)


def test_missing_tend():
    report = check([TBEGINC(), AHI(1, 1)])
    assert any("without a TEND" in v for v in report.violations)


def test_wrong_start_address():
    program = assemble([NOPR(), TBEGINC(), TEND()])
    report = check_constrained_block(program, program.entry)
    assert not report.ok


def test_branch_out_of_window_rejected():
    filler = [NOPR()] * 140  # 280 bytes of filler after the branch target
    report = check([
        TBEGINC(),
        CIJ(1, 0, 8, "far"),
        TEND(),
        *filler,
        ("far", NOPR()),
    ])
    assert any("window" in v for v in report.violations)
