"""Tests for the extended ISA: compare, bitwise, BRCT, STCK."""

from repro.cpu.assembler import assemble
from repro.cpu.isa import (
    AGSI,
    BRCT,
    CGR,
    HALT,
    LG,
    LHI,
    Mem,
    MSGR,
    NGR,
    OGR,
    SRL,
    STCK,
    XGR,
)
from repro.params import ZEC12
from repro.sim.machine import Machine


def run(items):
    machine = Machine(ZEC12)
    program = assemble([*items, HALT()])
    cpu = machine.add_program(program)
    result = machine.run()
    return machine, cpu, result


def test_cgr_condition_codes():
    _, cpu, _ = run([LHI(1, 5), LHI(2, 5), CGR(1, 2)])
    assert cpu.regs.psw.condition_code == 0
    _, cpu, _ = run([LHI(1, -3), LHI(2, 5), CGR(1, 2)])
    assert cpu.regs.psw.condition_code == 1
    _, cpu, _ = run([LHI(1, 9), LHI(2, 5), CGR(1, 2)])
    assert cpu.regs.psw.condition_code == 2


def test_bitwise_operations():
    _, cpu, _ = run([
        LHI(1, 0b1100), LHI(2, 0b1010), NGR(1, 2),
        LHI(3, 0b1100), LHI(4, 0b1010), OGR(3, 4),
        LHI(5, 0b1100), LHI(6, 0b1010), XGR(5, 6),
    ])
    assert cpu.regs.get_gr(1) == 0b1000
    assert cpu.regs.get_gr(3) == 0b1110
    assert cpu.regs.get_gr(5) == 0b0110


def test_bitwise_cc_zero_vs_nonzero():
    _, cpu, _ = run([LHI(1, 0b0101), LHI(2, 0b1010), NGR(1, 2)])
    assert cpu.regs.psw.condition_code == 0
    _, cpu, _ = run([LHI(1, 1), LHI(2, 1), NGR(1, 2)])
    assert cpu.regs.psw.condition_code == 1


def test_msgr_and_srl():
    _, cpu, _ = run([LHI(1, 12), LHI(2, 12), MSGR(1, 2), SRL(1, 2)])
    assert cpu.regs.get_gr(1) == 144 >> 2


def test_brct_loop():
    _, cpu, _ = run([
        LHI(1, 5),              # loop counter
        LHI(2, 0),              # accumulator
        ("loop", LHI(3, 1)),
        MSGR(3, 2),             # no-op-ish body
        AGSI(Mem(disp=0x10000), 1),
        BRCT(1, "loop"),
    ])
    machine, cpu, _ = run([
        LHI(1, 5),
        ("loop", AGSI(Mem(disp=0x10000), 1)),
        BRCT(1, "loop"),
    ])
    assert machine.memory.read_int(0x10000, 8) == 5
    assert cpu.regs.get_gr(1) == 0


def test_stck_stores_monotonic_timestamps():
    machine, cpu, _ = run([
        STCK(Mem(disp=0x20000)),
        AGSI(Mem(disp=0x30000), 1),   # consume some cycles
        STCK(Mem(disp=0x20008)),
        LG(1, Mem(disp=0x20000)),
        LG(2, Mem(disp=0x20008)),
    ])
    t0 = cpu.regs.get_gr(1)
    t1 = cpu.regs.get_gr(2)
    assert t1 > t0


def test_stck_measures_a_delay():
    from repro.cpu.isa import PAUSE

    machine, cpu, _ = run([
        STCK(Mem(disp=0x20000)),
        PAUSE(1000),
        STCK(Mem(disp=0x20008)),
        LG(1, Mem(disp=0x20000)),
        LG(2, Mem(disp=0x20008)),
    ])
    elapsed = cpu.regs.get_gr(2) - cpu.regs.get_gr(1)
    assert elapsed >= 1000
