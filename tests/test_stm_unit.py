"""Unit tests for the TL2-style orec STM (:mod:`repro.stm`).

The STM is the software half of the hybrid fallback: SBEGIN opens a
software transaction whose loads validate against per-grain ownership
records, whose stores buffer in a redo log, and whose SEND runs the
acquire/validate/write-back commit against the global version clock.
These tests pin the orec address map, the fallback-mode resolution
chain, and the architected SBEGIN/SEND/SABORT semantics on the real
machine — single-CPU first, then software-vs-software atomicity.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.cpu.assembler import assemble
from repro.cpu.isa import (
    AGSI,
    AHI,
    BRC,
    HALT,
    JNZ,
    LG,
    LHI,
    Mem,
    NTSTG,
    SABORT,
    SBEGIN,
    SEND,
    STG,
)
from repro.errors import ConfigurationError
from repro.params import ZEC12
from repro.sim.machine import Machine
from repro.stm import (
    ENV_VAR,
    FALLBACK_MODES,
    GCLOCK_ADDR,
    OREC_GRAIN_SHIFT,
    ORECS_BASE,
    orec_address,
    resolve_fallback_mode,
)

STM_PARAMS = dataclasses.replace(ZEC12, fallback_mode="stm")

DATA = 0x10000
OUT = 0x20000


def run_stm(items, n_cpus=1, params=STM_PARAMS):
    machine = Machine(params)
    program = assemble([*items, HALT()])
    for _ in range(n_cpus):
        machine.add_program(program)
    result = machine.run()
    return machine, result


class TestOrecMap:
    def test_grain_is_128_bytes(self):
        assert 1 << OREC_GRAIN_SHIFT == 128
        assert orec_address(0) == orec_address(127)
        assert orec_address(127) != orec_address(128)

    def test_adjacent_grains_get_adjacent_orecs(self):
        assert orec_address(128) == orec_address(0) + 8
        assert orec_address(DATA) >= ORECS_BASE

    def test_table_wraps_at_its_size(self):
        # 0x4000 orecs of 8 bytes: grains 0x4000 apart share an orec
        # (false conflicts are allowed; missed conflicts are not).
        assert orec_address(0) == orec_address(0x4000 << OREC_GRAIN_SHIFT)

    def test_orec_table_is_disjoint_from_the_clock(self):
        table = range(ORECS_BASE, ORECS_BASE + 0x4000 * 8)
        assert GCLOCK_ADDR not in table


class TestFallbackModeResolution:
    def test_default_is_lock(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_fallback_mode(None) == "lock"
        assert resolve_fallback_mode(ZEC12) == "lock"

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "stm")
        assert resolve_fallback_mode(ZEC12) == "stm"

    def test_params_override_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "stm")
        pinned = dataclasses.replace(ZEC12, fallback_mode="lock")
        assert resolve_fallback_mode(pinned) == "lock"

    def test_unknown_values_rejected(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "optimistic")
        with pytest.raises(ConfigurationError):
            resolve_fallback_mode(ZEC12)
        monkeypatch.delenv(ENV_VAR)
        bad = dataclasses.replace(ZEC12, fallback_mode="optimistic")
        with pytest.raises(ConfigurationError):
            resolve_fallback_mode(bad)

    def test_machine_property_resolves(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert Machine(ZEC12).fallback_mode == "lock"
        assert Machine(STM_PARAMS).fallback_mode == "stm"
        monkeypatch.setenv(ENV_VAR, "stm")
        assert Machine(ZEC12).fallback_mode == "stm"

    def test_modes_registry(self):
        assert FALLBACK_MODES == ("lock", "stm")


class TestSbeginRequiresStmMode:
    def test_sbegin_outside_stm_mode_is_an_error(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        with pytest.raises(Exception, match="SBEGIN"):
            run_stm([SBEGIN(), SEND()], params=ZEC12)


class TestSoftwareTransactions:
    def test_commit_publishes_the_redo_log(self):
        machine, result = run_stm([
            LHI(3, 42),
            ("t", SBEGIN()),
            BRC(7, "t"),
            STG(3, Mem(disp=DATA)),
            SEND(),
        ])
        assert machine.memory.read_int(DATA, 8) == 42
        assert result.cpus[0].sw_committed == 1
        assert result.cpus[0].sw_aborted == 0

    def test_commit_advances_the_global_clock(self):
        machine, _ = run_stm([
            LHI(3, 1),
            ("t", SBEGIN()),
            BRC(7, "t"),
            STG(3, Mem(disp=DATA)),
            SEND(),
        ])
        assert machine.memory.read_int(GCLOCK_ADDR, 8) > 0
        # The writer's orec carries the commit's (even) write version.
        version = machine.memory.read_int(orec_address(DATA), 8)
        assert version > 0 and version % 2 == 0

    def test_read_only_commit_does_not_bump_the_clock(self):
        machine, result = run_stm([
            ("t", SBEGIN()),
            BRC(7, "t"),
            LG(2, Mem(disp=DATA)),
            SEND(),
            STG(2, Mem(disp=OUT)),
        ])
        assert result.cpus[0].sw_committed == 1
        assert machine.memory.read_int(GCLOCK_ADDR, 8) == 0

    def test_sabort_discards_buffered_stores(self):
        machine, result = run_stm([
            LHI(3, 7),
            LHI(9, 0),
            ("t", SBEGIN()),
            BRC(7, "done"),  # the SABORT resumes here with CC2
            STG(3, Mem(disp=DATA)),
            SABORT(600),
            SEND(),
            "done",
        ])
        assert machine.memory.read_int(DATA, 8) == 0
        assert result.cpus[0].sw_aborted == 1
        assert result.cpus[0].sw_committed == 0

    def test_reads_see_own_buffered_writes(self):
        machine, _ = run_stm([
            LHI(3, 55),
            ("t", SBEGIN()),
            BRC(7, "t"),
            STG(3, Mem(disp=DATA)),
            LG(2, Mem(disp=DATA)),   # must observe 55 from the redo log
            SEND(),
            STG(2, Mem(disp=OUT)),
        ])
        assert machine.memory.read_int(OUT, 8) == 55

    def test_agsi_is_a_software_read_modify_write(self):
        machine, _ = run_stm([
            ("t", SBEGIN()),
            BRC(7, "t"),
            AGSI(Mem(disp=DATA), 5),
            AGSI(Mem(disp=DATA), 5),
            SEND(),
        ])
        assert machine.memory.read_int(DATA, 8) == 10

    def test_ntstg_survives_a_software_abort(self):
        machine, _ = run_stm([
            LHI(3, 88),
            ("t", SBEGIN()),
            BRC(7, "done"),
            NTSTG(3, Mem(disp=DATA)),  # non-transactional: writes through
            STG(3, Mem(disp=OUT)),     # transactional: must be discarded
            SABORT(600),
            "done",
        ])
        assert machine.memory.read_int(DATA, 8) == 88
        assert machine.memory.read_int(OUT, 8) == 0

    def test_software_vs_software_atomicity(self):
        # Pure STM contention: every increment must survive the
        # validate/write-back race between the two software committers.
        body = [
            ("t", SBEGIN()),
            BRC(7, "t"),     # StmAbort resumes after SBEGIN with CC2
            AGSI(Mem(disp=DATA), 1),
            SEND(),
        ]
        machine, result = run_stm([
            LHI(9, 10),
            "loop",
            *body,
            AHI(9, -1),
            JNZ("loop"),
        ], n_cpus=3)
        assert not result.aborted_early
        assert machine.memory.read_int(DATA, 8) == 30
        assert sum(c.sw_committed for c in result.cpus) == 30


class TestHardwarePublish:
    def test_hw_commit_bumps_written_orecs_in_stm_mode(self):
        machine, result = run_stm([
            *_hw_tx([AGSI(Mem(disp=DATA), 1)]),
        ])
        assert result.cpus[0].tx_committed == 1
        version = machine.memory.read_int(orec_address(DATA), 8)
        assert version > 0 and version % 2 == 0
        assert machine.memory.read_int(GCLOCK_ADDR, 8) >= version

    def test_hw_commit_leaves_orecs_alone_in_lock_mode(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        machine, result = run_stm([
            *_hw_tx([AGSI(Mem(disp=DATA), 1)]),
        ], params=ZEC12)
        assert result.cpus[0].tx_committed == 1
        assert machine.memory.read_int(orec_address(DATA), 8) == 0
        assert machine.memory.read_int(GCLOCK_ADDR, 8) == 0


def _hw_tx(body):
    from repro.cpu.isa import TBEGIN, TEND
    return [
        ("h", TBEGIN(grsm=0xFF)),
        BRC(7, "h"),
        *body,
        TEND(),
    ]
