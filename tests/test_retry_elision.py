"""Tests for retry-storm elision and the calendar event queue.

Retry parking extends the PR 5 spin-elision contract one level down:
a certified ``FetchRetry`` back-off chain is advanced by scheduler
ticks instead of re-executed instructions, and the bucketed calendar
queue replaces the binary heap underneath — both under the same strict
bit-identity contract. The tests pin that contract from several angles:

* PPA back-off delay identity at the interesting abort counts (0, 1,
  the exponent knee at 6, the clamp at 7, and far past it at 100), and
  end-to-end reject/abort identity on a constrained-TX point;
* certification: the chain never arms (and never parks) when the
  watched line's exclusive owner changes mid-backoff;
* the parked-deadlock diagnostic names a retry waiter's watched block;
* pinned bit-identity on coarse/fine/rwlock 48-CPU points, serial and
  through the parallel runner, in all four mode combinations
  (``REPRO_SPIN_ELIDE`` x ``REPRO_HEAP_SCHED``);
* a randomized heap-vs-calendar differential on the queue itself,
  resize path included;
* ``REPRO_RETRY_CHECK=1`` differential replay, with and without
  schedule jitter (retry parking stays armed under jitter).
"""

from __future__ import annotations

import heapq
import random
from types import SimpleNamespace

import pytest

from repro.bench.figures import UpdateExperiment, run_update_experiment
from repro.bench.parallel import run_tasks
from repro.core.ppa import PpaAssist
from repro.cpu.assembler import assemble
from repro.cpu.isa import HALT
from repro.errors import MachineStateError
from repro.mem.xi import WATCH_BLOCK_MASK
from repro.params import ZEC12
from repro.sim.machine import Machine
from repro.sim.scheduler import CalendarEventQueue, Scheduler
from repro.verify.jitter import ScheduleJitter
from repro.workloads.pool import PoolLayout, build_update_program

#: (cycles, instructions, tx_aborted, xi_rejects) pinned from the
#: reference implementation — 48-CPU points over all three lock schemes
#: (fine-grained locking is single-variable by design).
PINNED_48CPU = [
    (UpdateExperiment("coarse", 48, 1000, 4, iterations=3),
     (280111, 186668, 0, 0)),
    (UpdateExperiment("fine", 48, 1000, 1, iterations=3),
     (3412, 2256, 0, 0)),
    (UpdateExperiment("rwlock", 48, 1000, 4, iterations=3),
     (51045, 3984, 0, 0)),
]

IDS = [f"{e.scheme}-{e.n_cpus}" for e, _ in PINNED_48CPU]

#: The four scheduler mode combinations every pinned point must agree
#: across: spin/retry elision on/off x calendar/heap event queue.
MODES = [("1", "0"), ("1", "1"), ("0", "0"), ("0", "1")]
MODE_IDS = ["elide-cal", "elide-heap", "plain-cal", "plain-heap"]


def _summary(result):
    return (
        result.cycles,
        sum(c.instructions for c in result.cpus),
        sum(c.tx_aborted for c in result.cpus),
        sum(c.xi_rejects for c in result.cpus),
    )


class TestPpaBackoffIdentity:
    @pytest.mark.parametrize("count", [0, 1, 6, 7, 100])
    def test_delay_deterministic_per_seed(self, count):
        # The PPA delay stream must depend only on the seed and the
        # sequence of positive counts — never on scheduler mode — so two
        # assists with the same seed agree draw for draw.
        a = PpaAssist(ZEC12.latencies, random.Random(99))
        b = PpaAssist(ZEC12.latencies, random.Random(99))
        for _ in range(5):
            assert a.delay_cycles(count) == b.delay_cycles(count)

    @pytest.mark.parametrize("count", [0, 1, 6, 7, 100])
    def test_delay_bounds(self, count):
        unit = ZEC12.latencies.on_chip_intervention
        ppa = PpaAssist(ZEC12.latencies, random.Random(7))
        for _ in range(20):
            delay = ppa.delay_cycles(count)
            if count == 0:
                assert delay == 0
            else:
                exponent = min(count, PpaAssist.MAX_EXPONENT)
                assert unit <= delay <= unit * (1 << exponent)

    def test_clamped_counts_share_the_distribution(self):
        # Counts 7 and 100 both clamp to MAX_EXPONENT=6: same seed, same
        # draws — the back-off ceiling is retry-count independent.
        a = PpaAssist(ZEC12.latencies, random.Random(3))
        b = PpaAssist(ZEC12.latencies, random.Random(3))
        assert [a.delay_cycles(7) for _ in range(10)] == [
            b.delay_cycles(100) for _ in range(10)
        ]

    def test_constrained_point_reject_identity(self, monkeypatch):
        # End to end: a contended constrained-TX point's per-CPU reject
        # and abort counters (fed by the PPA back-off chains) must be
        # identical with retry parking on and off.
        experiment = UpdateExperiment("tbeginc", 24, 10, 4, iterations=15)
        monkeypatch.setenv("REPRO_SPIN_ELIDE", "1")
        elided = run_update_experiment(experiment)
        monkeypatch.setenv("REPRO_SPIN_ELIDE", "0")
        plain = run_update_experiment(experiment)
        assert [
            (c.xi_rejects, c.tx_aborted, c.instructions)
            for c in elided.cpus
        ] == [
            (c.xi_rejects, c.tx_aborted, c.instructions)
            for c in plain.cpus
        ]
        assert elided.cycles == plain.cycles


class TestRetryCertification:
    def _cpu_with_owned_line(self, owner):
        # spin_elide=True (not the env default) so the white-box checks
        # below behave the same under a REPRO_SPIN_ELIDE=0 CI leg.
        machine = Machine(ZEC12.with_cpus(4), spin_elide=True)
        cpu = machine.add_program(assemble([HALT()]))
        cpu.configure_spin_elide(True)
        line = 0x8000
        cpu.engine.fabric._lines[line] = SimpleNamespace(ex_owner=owner)
        return cpu, line

    def _note_try_raise(self, cpu, ia, line):
        """Mimic step()'s bookkeeping around a busy/reject FetchRetry
        raise: snapshot the fetch counter at entry, count the one fetch
        the try step performs, then run the raise-time hook."""
        fabric = cpu.engine.fabric
        cpu._retry_fetch0 = fabric.stats_fetches
        fabric.stats_fetches += 1
        cpu.engine._fetch_wait = None
        cpu._retry_note(ia, (line, True))

    def test_owner_change_between_raises_restarts(self):
        cpu, line = self._cpu_with_owned_line(owner=1)
        self._note_try_raise(cpu, 0x100, line)
        assert cpu._retry_trk == (0x100, line, True, 1)
        assert not cpu._retry_armed
        # The owner moves mid-backoff — the quantity the chain is
        # waiting out changed, so certification restarts from owner 2
        # instead of arming.
        cpu.engine.fabric._lines[line].ex_owner = 2
        self._note_try_raise(cpu, 0x100, line)
        assert not cpu._retry_armed
        assert cpu._retry_trk == (0x100, line, True, 2)

    def test_owner_change_before_park_point_blocks(self):
        cpu, line = self._cpu_with_owned_line(owner=1)
        self._note_try_raise(cpu, 0x100, line)
        self._note_try_raise(cpu, 0x100, line)
        assert cpu._retry_armed
        # Armed, but the owner moves before the park point: the re-check
        # must refuse to park and drop the certificate.
        cpu.engine.fabric._lines[line].ex_owner = 3
        assert not cpu._retry_try_park(cpu._retry_trk)
        assert cpu._retry_trk is None
        assert cpu.engine.fabric.watches.retry_by_cpu == {}

    def test_stable_owner_parks_and_registers_watch(self):
        cpu, line = self._cpu_with_owned_line(owner=1)
        self._note_try_raise(cpu, 0x100, line)
        self._note_try_raise(cpu, 0x100, line)
        assert cpu._retry_armed
        assert cpu._retry_try_park(cpu._retry_trk)
        assert cpu.engine.fabric.watches.retry_by_cpu[0] == (
            line, line & WATCH_BLOCK_MASK
        )
        cpu.retry_unpark()
        assert cpu.engine.fabric.watches.retry_by_cpu == {}

    def test_multi_line_fingerprint_blocks_arming(self):
        # Two fetches between entry and raise (a multi-line operation
        # replaying an L1 hit every retry): the fingerprint must not arm.
        cpu, line = self._cpu_with_owned_line(owner=1)
        self._note_try_raise(cpu, 0x100, line)
        fabric = cpu.engine.fabric
        cpu._retry_fetch0 = fabric.stats_fetches
        fabric.stats_fetches += 2
        cpu.engine._fetch_wait = None
        cpu._retry_note(0x100, (line, True))
        assert not cpu._retry_armed


class TestDeadlockDiagnostic:
    def test_diagnostic_names_retry_watched_block(self):
        machine = Machine(ZEC12.with_cpus(4))
        cpu = machine.add_program(assemble([HALT()]))
        line = 0x8000
        cpu.engine.add_retry_watch(line, line & WATCH_BLOCK_MASK)
        scheduler = Scheduler(machine.drivers)
        scheduler._parked[0] = None  # the guard only reads the indices
        with pytest.raises(MachineStateError) as exc:
            scheduler._raise_parked_deadlock()
        message = str(exc.value)
        assert "cpu 0 retry-parked on block 0x8000" in message
        assert "line 0x8000" in message


class TestPinnedBitIdentity:
    @pytest.mark.parametrize("experiment,pinned", PINNED_48CPU, ids=IDS)
    @pytest.mark.parametrize("elide,heap", MODES, ids=MODE_IDS)
    def test_serial(self, experiment, pinned, elide, heap, monkeypatch):
        monkeypatch.setenv("REPRO_SPIN_ELIDE", elide)
        monkeypatch.setenv("REPRO_HEAP_SCHED", heap)
        result = run_update_experiment(experiment)
        assert _summary(result) == pinned
        if elide == "0":
            assert result.sched["retry_parks"] == 0
        if heap == "1":
            assert result.sched["bucket_max_occupancy"] == 0

    @pytest.mark.parametrize("elide,heap", MODES, ids=MODE_IDS)
    def test_parallel(self, elide, heap, monkeypatch):
        # Workers fork after the env change, so they inherit it.
        monkeypatch.setenv("REPRO_SPIN_ELIDE", elide)
        monkeypatch.setenv("REPRO_HEAP_SCHED", heap)
        results = run_tasks(
            [("update", experiment) for experiment, _ in PINNED_48CPU],
            workers=2,
        )
        assert [_summary(r) for r in results] == [
            pinned for _, pinned in PINNED_48CPU
        ]

    def test_retry_parking_engages_on_coarse_point(self, monkeypatch):
        # Guards the identity matrix against vacuity: the contended CSG
        # point must actually park retry waiters (and tick them).
        monkeypatch.setenv("REPRO_SPIN_ELIDE", "1")
        monkeypatch.delenv("REPRO_HEAP_SCHED", raising=False)
        result = run_update_experiment(PINNED_48CPU[0][0])
        sched = result.sched
        assert sched["retry_parks"] > 0
        assert sched["retry_wakes"] == sched["retry_parks"]
        assert sched["retry_ticks"] > 0
        assert sched["events"] > 0


class TestCalendarQueue:
    def test_randomized_heap_differential(self):
        # Tiny bucket array (4 buckets of 4 cycles) so resizes, cursor
        # rewinds, and whole-year-empty jumps all trigger; the calendar
        # must reproduce the heap's (time, seq) pop order exactly.
        rng = random.Random(20260808)
        for trial in range(25):
            cal = CalendarEventQueue(shift=2, nbuckets=4)
            heap = []
            seq = 0
            now = 0
            for _ in range(600):
                if heap and rng.random() < 0.45:
                    expected = heapq.heappop(heap)
                    assert cal.pop() == expected
                    now = expected[0]
                else:
                    # Mostly near-future pushes with occasional far
                    # jumps (the distribution the bucket sizing targets)
                    # and same-time pushes to exercise FIFO-by-seq.
                    dt = rng.choice((0, 0, 1, 2, 3, 5, 17, 130, 341,
                                     4096, 70000))
                    seq += 1
                    item = (now + dt, seq, seq % 48)
                    cal.push(item)
                    heapq.heappush(heap, item)
                assert cal.n == len(heap)
            while heap:
                assert cal.pop() == heapq.heappop(heap)
            assert cal.resizes > 0
            assert cal.max_occupancy > 0

    def test_pushpop_matches_heap(self):
        rng = random.Random(42)
        cal = CalendarEventQueue(shift=2, nbuckets=4)
        heap = []
        seq = 0
        now = 0
        for _ in range(50):
            seq += 1
            cal.push((now + rng.randrange(64), seq, 0))
        # Mirror the calendar's contents into the reference heap.
        heap = sorted(item for b in cal.buckets for item in b)
        heapq.heapify(heap)
        for _ in range(300):
            seq += 1
            item = (now + rng.randrange(64), seq, 0)
            expected = heapq.heappushpop(heap, item)
            got = cal.pushpop(item)
            assert got == expected
            now = expected[0]

    def test_peek_time_and_empty(self):
        cal = CalendarEventQueue(shift=2, nbuckets=4)
        assert cal.peek_time() is None
        cal.push((100, 1, 0))
        cal.push((3, 2, 0))
        assert cal.peek_time() == 3
        assert cal.pop() == (3, 2, 0)
        assert cal.pop() == (100, 1, 0)
        assert cal.peek_time() is None

    def test_nbuckets_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            CalendarEventQueue(shift=2, nbuckets=3)


class TestRetryCheck:
    def test_differential_run_passes(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY_CHECK", "1")
        monkeypatch.setenv("REPRO_SPIN_ELIDE", "1")
        experiment = UpdateExperiment("coarse", 12, 1000, 4, iterations=5)
        result = run_update_experiment(experiment)
        assert result.sched["retry_parks"] > 0

    def test_differential_under_jitter(self, monkeypatch):
        # Retry parking stays armed under schedule jitter (the ticks
        # draw the per-step perturbation in exact pop order); the
        # differential against the jittered non-elided reference must
        # come back bit-identical, with parking demonstrably engaged.
        monkeypatch.setenv("REPRO_RETRY_CHECK", "1")
        monkeypatch.setenv("REPRO_SPIN_ELIDE", "1")
        for seed in (0, 7):
            machine = Machine(ZEC12.with_cpus(12))
            program = build_update_program(
                "coarse", PoolLayout(1000), n_vars=4, iterations=5
            )
            for _ in range(12):
                machine.add_program(program)
            machine.schedule_perturb = ScheduleJitter(seed, 9)
            result = machine.run()
            assert result.sched["retry_parks"] > 0
            assert result.sched["parks"] == 0  # spin parking stays off
