"""Engine-level interruption filtering: page faults and PIFC behaviour."""

import pytest

from conftest import EngineHarness

from repro.core.abort import AbortCode
from repro.core.filtering import InterruptionCode
from repro.core.txstate import TbeginControls
from repro.errors import ProgramInterruptionSignal, TransactionAbortSignal
from repro.mem.address import PAGE_SIZE
from repro.mem.paging import PageTable

ADDR = 0x10000


class TestPageTable:
    def test_all_present_by_default(self):
        table = PageTable()
        assert table.present(0)
        assert table.first_missing(0, 100) == -1

    def test_unmap_and_map(self):
        table = PageTable()
        table.unmap(ADDR)
        assert not table.present(ADDR)
        assert table.first_missing(ADDR - 8, 32) >= ADDR - 8
        table.map(ADDR)
        assert table.present(ADDR)
        assert table.paged_in

    def test_unmap_spans_pages(self):
        table = PageTable()
        table.unmap(PAGE_SIZE - 1, length=2)
        assert not table.present(0)
        assert not table.present(PAGE_SIZE)


class TestFaultOutsideTransaction:
    def test_load_fault_raises_interruption_signal(self, harness):
        harness.page_table.unmap(ADDR)
        with pytest.raises(ProgramInterruptionSignal) as info:
            harness.engine().load(ADDR, 8)
        assert info.value.interruption.code == InterruptionCode.PAGE_TRANSLATION
        assert info.value.interruption.translation_address == ADDR


class TestFaultInsideTransaction:
    def test_unfiltered_fault_aborts_with_code_4(self, harness):
        harness.page_table.unmap(ADDR)
        harness.tbegin(controls=TbeginControls(pifc=0))
        with pytest.raises(TransactionAbortSignal):
            harness.engine().load(ADDR, 8)
        abort = harness.process_abort()
        assert abort.code == AbortCode.PROGRAM_INTERRUPTION
        assert abort.interrupts_to_os
        assert abort.interruption_code == InterruptionCode.PAGE_TRANSLATION
        assert abort.translation_address == ADDR

    def test_pifc2_filters_page_fault(self, harness):
        """Filtered: abort code 12, no interruption into the OS."""
        harness.page_table.unmap(ADDR)
        harness.tbegin(controls=TbeginControls(pifc=2))
        with pytest.raises(TransactionAbortSignal):
            harness.engine().load(ADDR, 8)
        abort = harness.process_abort()
        assert abort.code == AbortCode.PROGRAM_EXCEPTION_FILTERED
        assert not abort.interrupts_to_os
        assert abort.condition_code == 3

    def test_pifc1_does_not_filter_access_exceptions(self, harness):
        harness.page_table.unmap(ADDR)
        harness.tbegin(controls=TbeginControls(pifc=1))
        with pytest.raises(TransactionAbortSignal):
            harness.engine().load(ADDR, 8)
        assert harness.process_abort().interrupts_to_os

    def test_filtered_fault_never_reaches_os_and_loops(self, harness):
        """The paper's warning: a filtered page fault is never reported,
        so the transaction fails every time it is executed."""
        harness.page_table.unmap(ADDR)
        for _ in range(3):
            harness.tbegin(controls=TbeginControls(pifc=2))
            with pytest.raises(TransactionAbortSignal):
                harness.engine().load(ADDR, 8)
            harness.process_abort()
        assert not harness.page_table.paged_in  # the OS never saw it


class TestTdbAccessibility:
    def test_tbegin_tests_tdb_page(self, harness):
        """The TDB accessibility test happens pre-transactionally."""
        tdb = 0x8000
        harness.page_table.unmap(tdb)
        with pytest.raises(ProgramInterruptionSignal):
            harness.engine().tx_begin(
                TbeginControls(tdb_address=tdb), constrained=False, ia=0
            )
        assert not harness.engine().tx.active


class TestExternalInterruption:
    def test_external_interruption_aborts_transaction(self, harness):
        engine = harness.engine()
        harness.tbegin()
        harness.store(0, ADDR, 1)
        engine.external_interruption()
        with pytest.raises(TransactionAbortSignal):
            engine.raise_if_pending()
        abort = harness.process_abort()
        assert abort.code == AbortCode.EXTERNAL_INTERRUPTION
        assert abort.interrupts_to_os
        assert abort.condition_code == 2

    def test_external_interruption_outside_tx_is_noop(self, harness):
        harness.engine().external_interruption()
        assert harness.engine().pending_abort is None


class TestConstrainedDynamicChecks:
    def test_octoword_limit_enforced(self, harness):
        harness.tbegin(constrained=True)
        for i in range(4):
            harness.load(0, 0x100000 + i * 256)
        with pytest.raises(TransactionAbortSignal):
            harness.load(0, 0x100000 + 4 * 256)
        abort = harness.process_abort()
        assert abort.interruption_code == InterruptionCode.TRANSACTION_CONSTRAINT
        assert abort.interrupts_to_os  # non-filterable

    def test_instruction_limit_enforced(self, harness):
        engine = harness.engine()
        harness.tbegin(constrained=True)
        limit = harness.params.tx.constrained_max_instructions
        for _ in range(limit):
            engine.note_instruction()
        with pytest.raises(TransactionAbortSignal):
            engine.note_instruction()
        abort = harness.process_abort()
        assert abort.interruption_code == InterruptionCode.TRANSACTION_CONSTRAINT

    def test_same_octoword_counted_once(self, harness):
        harness.tbegin(constrained=True)
        for _ in range(10):
            harness.load(0, 0x100000)  # same octoword every time
        harness.tend()
        assert harness.engine().stats_tx_committed == 1
