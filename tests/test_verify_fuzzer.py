"""Tests for the serializability oracle and schedule-perturbation fuzzer.

Three layers of confidence:

* a bounded fixed-seed fuzz run must come back green (the engine
  satisfies the oracles over a few hundred random schedules);
* *oracle sensitivity*: each oracle must actually fire when its property
  is broken — we corrupt final memory, leak a canary, zero an NTSTG
  slot, and tamper with the transaction log, and assert the specific
  violation appears (a fuzzer whose checks cannot fail proves nothing);
* the infrastructure itself is deterministic: same seed, same case,
  same run, same shrink — on every machine and Python version.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.errors import ConfigurationError
from repro.verify import (
    ScheduleJitter,
    case_from_json,
    case_seed,
    case_to_json,
    check_case,
    check_outcome,
    fuzz,
    generate_case,
    replay,
    run_case,
    shrink_case,
    validate_case,
)
from repro.verify.dsl import SHARED_BASE, tracked_addresses
from repro.verify.reference import ReplayError

FUZZ_SEED = 0
FUZZ_CASES = 120


def _blank_block(bid, ops, fate="commit", **overrides):
    block = {
        "id": bid,
        "mode": "tbegin",
        "fate": fate,
        "fault": None if fate == "commit" else "tabort",
        "pifc": 0,
        "nest": None,
        "ntstg_slot": None,
        "fault_token": 0,
        "canary": None,
        "ops": ops,
    }
    block.update(overrides)
    return block


def _two_writer_case():
    """Two CPUs, each committing one write to the same shared variable."""
    return {
        "schema": "repro.verify/1",
        "n_cpus": 2,
        "pool": [SHARED_BASE],
        "init": [],
        "schedule_seed": 1,
        "jitter": 0,
        "speculation": False,
        "max_cycles": 3_000_000,
        "programs": [
            [["tx", _blank_block(0, [["write", SHARED_BASE, 7]])]],
            [["tx", _blank_block(1, [["write", SHARED_BASE, 9]])]],
        ],
    }


class TestFuzzRun:
    def test_fixed_seed_sweep_is_green(self):
        report = fuzz(seed=FUZZ_SEED, n_cases=FUZZ_CASES, shrink=False)
        assert report.cases_run == FUZZ_CASES
        assert report.ok, [f.violations for f in report.failures]

    def test_case_seed_sequence_is_stable(self):
        # Pinned values: the corpus and CI matrix rely on this mapping.
        assert case_seed(0, 0) == 0
        assert case_seed(0, 7) == 7
        assert case_seed(3, 2) == (3 * 1_000_003 + 2)
        assert 0 <= case_seed(12345, 999) <= 0x7FFF_FFFF

    def test_fuzz_requires_a_bound(self):
        with pytest.raises(ValueError):
            fuzz(seed=0)


class TestGeneratorDeterminism:
    def test_same_seed_same_case(self):
        assert generate_case(1234) == generate_case(1234)

    def test_cases_round_trip_through_json(self):
        for seed in (0, 1, 99):
            case = generate_case(seed)
            assert case_from_json(case_to_json(case)) == case

    def test_generated_cases_validate(self):
        for seed in range(30):
            validate_case(generate_case(seed))

    def test_run_case_is_deterministic(self):
        case = generate_case(5)
        a, b = run_case(case), run_case(copy.deepcopy(case))
        assert a.result.tx_log == b.result.tx_log
        for addr in sorted(tracked_addresses(case)):
            assert (a.machine.memory.read_int(addr, 8)
                    == b.machine.memory.read_int(addr, 8))

    def test_schedule_jitter_is_a_seeded_stream(self):
        a = ScheduleJitter(7, 40)
        b = ScheduleJitter(7, 40)
        pairs = [(i, lat) for i in range(50) for lat in (0, 1, 9)]
        seq_a = [a(i, lat) for i, lat in pairs]
        seq_b = [b(i, lat) for i, lat in pairs]
        assert seq_a == seq_b
        assert all(lat <= out <= lat + 40
                   for (_, lat), out in zip(pairs, seq_a))


class TestOracleSensitivity:
    """Every oracle must fire when its property is violated."""

    def _failing_canary_case(self):
        # A canary slot is only ever stored transactionally on a path
        # that always aborts; pre-loading it via init simulates an abort
        # whose store leaked to memory.
        for seed in range(50):
            case = generate_case(seed)
            for program in case["programs"]:
                for event in program:
                    if (event[0] == "tx" and event[1]["fate"] != "commit"
                            and event[1].get("canary") is not None):
                        case["init"].append([event[1]["canary"], 999])
                        return case
        raise AssertionError("no generated case had a fault-path canary")

    def test_leaked_canary_is_detected(self):
        violations = check_case(self._failing_canary_case())
        assert any("abort invisibility" in v for v in violations)

    def test_corrupted_final_state_is_detected(self):
        case = generate_case(3)
        outcome = run_case(case)
        assert not check_outcome(case, outcome)
        addr = case["pool"][0]
        outcome.machine.memory.write_int(addr, 31999, 8)
        violations = check_outcome(case, outcome)
        assert any("final state" in v and f"0x{addr:x}" in v
                   for v in violations)

    def test_lost_ntstg_is_detected(self):
        # Find a case where a fault path demonstrably ran (the log shows
        # the injected abort code) and zero its surviving NTSTG slot.
        for seed in range(80):
            case = generate_case(seed)
            outcome = run_case(case)
            assert not check_outcome(case, outcome)
            for program in case["programs"]:
                for event in program:
                    if event[0] != "tx":
                        continue
                    block = event[1]
                    slot = block.get("ntstg_slot")
                    if slot is None or block["fate"] == "commit":
                        continue
                    if outcome.machine.memory.read_int(slot, 8) == 0:
                        continue  # fault path lost the race; keep looking
                    outcome.machine.memory.write_int(slot, 0, 8)
                    violations = check_outcome(case, outcome)
                    assert any("NTSTG survival" in v for v in violations)
                    return
        raise AssertionError("no case exercised an NTSTG fault path")

    def test_dropped_commit_entry_is_detected(self):
        case = generate_case(3)
        outcome = run_case(case)
        entries = outcome.result.tx_log["entries"]
        index = next(i for i, e in enumerate(entries) if e[1] == "commit")
        del entries[index]
        violations = check_outcome(case, outcome)
        assert any("committed 0 times, expected 1" in v for v in violations)

    def test_tampered_write_set_is_detected(self):
        case = _two_writer_case()
        outcome = run_case(case)
        assert not check_outcome(case, outcome)
        entry = next(e for e in outcome.result.tx_log["entries"]
                     if e[1] == "commit")
        entry[7] = entry[7][:-1]  # drop one committed write line
        violations = check_outcome(case, outcome)
        assert any("static store footprint" in v for v in violations)

    def test_reordered_conflicting_commits_are_detected(self):
        # Both blocks write the same address with different tokens, so
        # swapping their log entries claims a serialization order whose
        # sequential replay ends in the other token.
        case = _two_writer_case()
        outcome = run_case(case)
        assert not check_outcome(case, outcome)
        entries = outcome.result.tx_log["entries"]
        commits = [i for i, e in enumerate(entries) if e[1] == "commit"]
        assert len(commits) == 2
        i, j = commits
        entries[i], entries[j] = entries[j], entries[i]
        violations = check_outcome(case, outcome)
        assert any("final state" in v for v in violations)

    def test_crash_during_check_counts_as_failure(self):
        report = fuzz(seed=0, n_cases=1, shrink=False)
        assert report.ok
        # A case the runner cannot even start must be reported as a
        # crash finding, not raise out of the fuzz loop.
        from repro.verify import fuzzer as fuzzer_mod
        broken = generate_case(0)
        broken["max_cycles"] = -1
        assert any(v.startswith("crash:")
                   for v in fuzzer_mod._check_safely(broken))


class TestShrinker:
    def _planted_failure(self):
        case = generate_case(0)
        for program in case["programs"]:
            for event in program:
                if (event[0] == "tx" and event[1]["fate"] != "commit"
                        and event[1].get("canary") is not None):
                    case["init"].append([event[1]["canary"], 999])
                    return case
        raise AssertionError("seed 0 no longer generates a canary block")

    @staticmethod
    def _size(case):
        return sum(
            len(program)
            + sum(len(e[1]["ops"]) for e in program if e[0] == "tx")
            for program in case["programs"]
        )

    def test_shrink_reduces_and_preserves_failure(self):
        case = self._planted_failure()
        assert check_case(case)
        shrunk = shrink_case(case)
        assert check_case(shrunk)
        assert self._size(shrunk) < self._size(case)
        assert shrunk["n_cpus"] <= case["n_cpus"]
        validate_case(shrunk)

    def test_shrink_is_deterministic(self):
        case = self._planted_failure()
        assert shrink_case(case) == shrink_case(copy.deepcopy(case))

    def test_shrink_keeps_passing_case_untouched(self):
        case = generate_case(2)
        assert not check_case(case)
        # shrink_case requires a failing input by contract.
        assert shrink_case(case) == case


class TestCaseValidation:
    def test_unknown_schema_rejected(self):
        case = generate_case(0)
        case["schema"] = "repro.verify/999"
        with pytest.raises(ConfigurationError):
            validate_case(case)

    def test_duplicate_block_ids_rejected(self):
        case = _two_writer_case()
        case["programs"][1][0][1]["id"] = 0
        with pytest.raises(ConfigurationError):
            validate_case(case)

    def test_constrained_blocks_cannot_nest_or_fault(self):
        case = _two_writer_case()
        block = case["programs"][0][0][1]
        block["mode"] = "tbeginc"
        block["fate"] = "abort_once"
        block["fault"] = "tabort"
        with pytest.raises(ConfigurationError):
            validate_case(case)

    def test_fault_required_for_aborting_fates(self):
        case = _two_writer_case()
        case["programs"][0][0][1]["fate"] = "doomed"
        with pytest.raises(ConfigurationError):
            validate_case(case)

    def test_tracked_addresses_exclude_fault_furniture(self):
        case = _two_writer_case()
        block = case["programs"][0][0][1]
        block["fate"] = "abort_once"
        block["fault"] = "tabort"
        block["ntstg_slot"] = 0x20_0100
        block["fault_token"] = 5
        block["canary"] = 0x20_0108
        tracked = tracked_addresses(case)
        assert SHARED_BASE in tracked
        assert 0x20_0100 not in tracked
        assert 0x20_0108 not in tracked


class TestReference:
    def test_replay_orders_conflicting_writers(self):
        case = _two_writer_case()
        first = replay(case, [(0, 0), (1, 0)])
        second = replay(case, [(1, 0), (0, 0)])
        assert first[SHARED_BASE] == 9
        assert second[SHARED_BASE] == 7

    def test_replay_rejects_skipping_a_committing_block(self):
        case = _two_writer_case()
        with pytest.raises(ReplayError):
            replay(case, [(0, 0)])  # block 1 never commits

    def test_replay_rejects_double_commit(self):
        case = _two_writer_case()
        with pytest.raises(ReplayError):
            replay(case, [(0, 0), (0, 0), (1, 0)])


class TestCli:
    def test_cli_green_run(self, capsys):
        from repro.verify.__main__ import main
        assert main(["--cases", "5", "--seed", "0", "--quiet"]) == 0
        assert "passed" in capsys.readouterr().out

    def test_cli_replay_corpus(self, tmp_path, capsys):
        from repro.verify.__main__ import main
        case = generate_case(1)
        (tmp_path / "case.json").write_text(case_to_json(case))
        assert main(["--replay", str(tmp_path), "--quiet"]) == 0
        assert "1 corpus case(s), 0 failing" in capsys.readouterr().out

    def test_cli_replay_flags_failing_corpus_case(self, tmp_path, capsys):
        from repro.verify.__main__ import main
        case = generate_case(0)
        planted = False
        for program in case["programs"]:
            for event in program:
                if (event[0] == "tx" and event[1]["fate"] != "commit"
                        and event[1].get("canary") is not None):
                    case["init"].append([event[1]["canary"], 999])
                    planted = True
                    break
            if planted:
                break
        assert planted
        (tmp_path / "bad.json").write_text(case_to_json(case))
        assert main(["--replay", str(tmp_path)]) == 1
        assert "1 failing" in capsys.readouterr().out

    def test_failure_archived_to_corpus_dir(self, tmp_path):
        # Route the fuzzer through a generator whose output fails, via a
        # corpus write from a hand-planted failing case.
        from repro.verify.fuzzer import Failure, _write_failure
        case = generate_case(0)
        failure = Failure(index=0, seed=42, violations=["boom"], case=case)
        path = _write_failure(str(tmp_path), failure)
        stored = json.loads(open(path).read())
        assert stored["found_violations"] == ["boom"]
        validate_case(stored)
