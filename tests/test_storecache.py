"""Unit tests for the gathering store cache (paper section III.D)."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.storecache import (
    BLOCK_SIZE,
    GatheringStoreCache,
    StoreCacheOverflow,
    block_address,
)


def drained_bytes(cache):
    """Flatten the drained (address, data) runs into {byte_addr: value}."""
    out = {}
    for addr, data in cache.take_drained():
        for i, value in enumerate(data):
            out[addr + i] = value
    return out


def test_block_address():
    assert block_address(0) == 0
    assert block_address(127) == 0
    assert block_address(128) == 128
    assert block_address(300) == 256


def test_gathering_into_existing_entry():
    cache = GatheringStoreCache(entries=4, drain_threshold=0)
    cache.store(0, b"\x01" * 8, tx=False)
    cache.store(8, b"\x02" * 8, tx=False)
    assert len(cache) == 1
    assert cache.stats_gathered == 1
    assert cache.forward_byte(0) == 1
    assert cache.forward_byte(8) == 2


def test_store_spanning_blocks_allocates_two_entries():
    cache = GatheringStoreCache(entries=4, drain_threshold=0)
    cache.store(120, b"\xaa" * 16, tx=False)
    assert len(cache) == 2
    assert cache.forward_byte(120) == 0xAA
    assert cache.forward_byte(135) == 0xAA


def test_tbegin_closes_entries_and_drains_nontx():
    cache = GatheringStoreCache(entries=4, drain_threshold=0)
    cache.store(0, b"\x01", tx=False)
    drained = cache.begin_transaction()
    assert drained == 1
    assert len(cache) == 0
    assert drained_bytes(cache) == {0: 1}


def test_tx_store_does_not_gather_into_nontx_entry():
    cache = GatheringStoreCache(entries=4, drain_threshold=0)
    cache.store(0, b"\x01", tx=False)
    cache.store(8, b"\x02", tx=True)
    # Two entries for the same block: gathering across the tx boundary is
    # forbidden (closed entries cannot gather).
    assert len(cache) == 2


def test_forwarding_youngest_entry_wins():
    cache = GatheringStoreCache(entries=4, drain_threshold=0)
    cache.store(0, b"\x01", tx=False)
    cache.store(0, b"\x02", tx=True)
    assert cache.forward_byte(0) == 2


def test_commit_reopens_entries_for_gathering():
    cache = GatheringStoreCache(entries=4, drain_threshold=0)
    cache.store(0, b"\x01", tx=True)
    cache.end_transaction()
    assert cache.tx_entry_count() == 0
    # Post-transaction stores may allocate again and drain normally.
    cache.drain_all()
    assert drained_bytes(cache).get(0) == 1


def test_abort_invalidates_tx_entries():
    cache = GatheringStoreCache(entries=4, drain_threshold=0)
    cache.store(0, b"\x01", tx=True)
    cache.store(256, b"\x02", tx=True)
    dropped = cache.abort_transaction()
    assert dropped == {0, 256}
    assert len(cache) == 0
    assert cache.forward_byte(0) is None


def test_abort_preserves_ntstg_doublewords():
    cache = GatheringStoreCache(entries=4, drain_threshold=0)
    cache.store(0, b"\x11" * 8, tx=True, ntstg=True)   # NTSTG doubleword
    cache.store(8, b"\x22" * 8, tx=True)               # normal tx store
    cache.abort_transaction()
    assert cache.forward_byte(0) == 0x11   # survived
    assert cache.forward_byte(8) is None   # dropped
    cache.drain_all()
    assert drained_bytes(cache).get(0) == 0x11


def test_overflow_aborts_when_full_of_tx_entries():
    cache = GatheringStoreCache(entries=2, drain_threshold=0)
    cache.store(0, b"\x01", tx=True)
    cache.store(BLOCK_SIZE, b"\x02", tx=True)
    with pytest.raises(StoreCacheOverflow):
        cache.store(2 * BLOCK_SIZE, b"\x03", tx=True)


def test_nontx_store_drains_oldest_when_full():
    cache = GatheringStoreCache(entries=2, drain_threshold=0)
    cache.store(0, b"\x01", tx=False)
    cache.store(BLOCK_SIZE, b"\x02", tx=False)
    cache.store(2 * BLOCK_SIZE, b"\x03", tx=False)
    assert len(cache) == 2
    assert drained_bytes(cache).get(0) == 1


def test_xi_compare_classification():
    cache = GatheringStoreCache(entries=4, drain_threshold=0)
    assert cache.xi_compare(0) == "clear"
    cache.store(0, b"\x01", tx=False)
    assert cache.xi_compare(0) == "drain"
    cache.store(8, b"\x02", tx=True)
    assert cache.xi_compare(0) == "reject"
    # A different line is unaffected.
    assert cache.xi_compare(512) == "clear"


def test_drain_line_flushes_only_nontx_entries_for_line():
    cache = GatheringStoreCache(entries=8, drain_threshold=0)
    cache.store(0, b"\x01", tx=False)
    cache.store(128, b"\x02", tx=False)   # same 256B line, second block
    cache.store(256, b"\x03", tx=False)   # different line
    drained = cache.drain_line(0)
    assert drained == 2
    assert len(cache) == 1
    writes = drained_bytes(cache)
    assert writes[0] == 1 and writes[128] == 2


def test_tx_lines_is_precise_write_set():
    cache = GatheringStoreCache(entries=8, drain_threshold=0)
    cache.store(0, b"\x01", tx=True)
    cache.store(130, b"\x02", tx=True)   # same line, different block
    cache.store(512, b"\x03", tx=False)
    assert cache.tx_lines() == {0}
    assert cache.active_lines() == {0, 512}


@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=1023),
              st.integers(min_value=1, max_value=8),
              st.integers(min_value=0, max_value=255)),
    min_size=1, max_size=60))
def test_forwarding_matches_reference_model(stores):
    """Property: byte forwarding equals a simple last-write-wins model."""
    cache = GatheringStoreCache(entries=64)
    reference = {}
    for addr, length, value in stores:
        data = bytes([value]) * length
        cache.store(addr, data, tx=False)
        for i in range(length):
            reference[addr + i] = value
    # The address range spans at most 9 blocks, far below the drain
    # threshold, so every byte is still resident.
    assert cache.take_drained() == []
    for byte_addr, expected in reference.items():
        assert cache.forward_byte(byte_addr) == expected


@given(st.lists(st.integers(min_value=0, max_value=2047), min_size=1,
                max_size=100))
def test_drain_everything_reaches_memory_once(addresses):
    """Property: drain_all emits every resident byte exactly once."""
    cache = GatheringStoreCache(entries=64)
    expected = {}
    for i, addr in enumerate(addresses):
        cache.store(addr, bytes([i & 0xFF]), tx=False)
        expected[addr] = i & 0xFF
    cache.drain_all()
    final = drained_bytes(cache)
    for addr, value in expected.items():
        assert final.get(addr) == value
