"""Asynchronous-interruption pressure on transactions.

The paper: interrupts are one of the abort reasons, and for constrained
transactions "the OS must also ensure time-slices long enough to allow
the transaction to complete". These tests inject external (timer)
interruptions at configurable intervals and check the architected
behaviour: transactions abort with code 2 and CC 2, retries succeed when
the interval leaves room, and millicode's constrained abort counter is
reset by OS interruptions (so escalation never punishes interrupt noise).
"""

from repro.core.abort import AbortCode
from repro.cpu.assembler import assemble
from repro.cpu.isa import AGSI, AHI, HALT, J, JNZ, LHI, Mem, TBEGIN, TBEGINC, TEND
from repro.params import ZEC12
from repro.sim.machine import Machine

DATA = 0x10000


def retry_program(iterations=20, constrained=False):
    begin = TBEGINC() if constrained else TBEGIN()
    items = [LHI(9, iterations), ("loop", begin)]
    if not constrained:
        items.append(JNZ("retry"))
    items += [
        AGSI(Mem(disp=DATA), 1),
        TEND(),
        AHI(9, -1),
        JNZ("loop"),
        J("done"),
    ]
    if not constrained:
        items.append(("retry", J("loop")))
    items.append(("done", HALT()))
    return assemble(items)


def test_interrupts_abort_transactions_with_code_2():
    machine = Machine(ZEC12, external_interrupt_interval=300)
    cpu = machine.add_program(retry_program())
    machine.run()
    assert machine.memory.read_int(DATA, 8) == 20  # retries recovered all
    assert cpu.aborts
    assert all(a.code == AbortCode.EXTERNAL_INTERRUPTION for a in cpu.aborts)
    assert all(a.condition_code == 2 for a in cpu.aborts)  # transient


def test_constrained_transactions_survive_interrupt_noise():
    """Eventual success holds: interruptions reset the millicode abort
    counter (they do not escalate towards broadcast-stop) and the OS
    grants enough room to finish."""
    machine = Machine(ZEC12, external_interrupt_interval=400)
    machine.add_program(retry_program(constrained=True))
    machine.run(max_cycles=20_000_000)
    assert machine.memory.read_int(DATA, 8) == 20
    assert machine.engines[0].millicode.constrained_abort_count == 0


def test_longer_timeslices_mean_fewer_aborts():
    def aborts_with(interval):
        machine = Machine(ZEC12, external_interrupt_interval=interval)
        machine.add_program(retry_program(iterations=30))
        machine.run()
        assert machine.memory.read_int(DATA, 8) == 30
        return machine.engines[0].stats_tx_aborted

    noisy = aborts_with(250)
    quiet = aborts_with(20_000)
    assert noisy > quiet


def test_interrupts_do_not_break_multicpu_atomicity():
    machine = Machine(ZEC12.with_cpus(3), external_interrupt_interval=350)
    program = retry_program(iterations=15)
    for _ in range(3):
        machine.add_program(program)
    machine.run()
    assert machine.memory.read_int(DATA, 8) == 45
