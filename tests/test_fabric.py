"""Integration tests for the coherence fabric via the engine harness."""

import pytest

from conftest import EngineHarness, small_params

from repro.mem.line import Ownership
from repro.mem.xi import XiType


LINE = 0x10000


def state_of(harness, cpu, line):
    entry = harness.engine(cpu).l1.directory.lookup(line)
    return entry.state if entry is not None else None


def test_read_only_sharing(duo):
    duo.store(0, LINE, 7)
    duo.quiesce()
    assert duo.load(0, LINE) == 7
    assert duo.load(1, LINE) == 7
    info = duo.fabric.line_info(LINE)
    assert 1 in info.ro_owners
    # CPU0 got demoted when CPU1 read the line.
    assert info.ex_owner == -1 or info.ex_owner == 0


def test_exclusive_acquisition_invalidates_readers(duo):
    duo.load(0, LINE)
    duo.load(1, LINE)
    duo.store(1, LINE, 5)
    info = duo.fabric.line_info(LINE)
    assert info.ex_owner == 1
    assert 0 not in info.ro_owners
    assert state_of(duo, 0, LINE) is None  # read-only XI invalidated it


def test_store_then_remote_load_demotes_owner(duo):
    duo.store(0, LINE, 9)
    assert duo.fabric.line_info(LINE).ex_owner == 0
    assert duo.load(1, LINE) == 9  # demote XI + store-cache drain
    info = duo.fabric.line_info(LINE)
    assert info.ex_owner == -1
    assert {0, 1} <= info.owners()
    entry = state_of(duo, 0, LINE)
    assert entry is Ownership.READ_ONLY


def test_write_after_write_transfers_exclusivity(duo):
    duo.store(0, LINE, 1)
    duo.store(1, LINE, 2)
    duo.quiesce()
    assert duo.memory.read_int(LINE, 8) == 2
    assert duo.fabric.line_info(LINE).ex_owner == 1
    assert state_of(duo, 0, LINE) is None


def test_upgrade_from_read_only(harness):
    harness.load(0, LINE)
    assert harness.fabric.line_info(LINE).ex_owner == -1
    harness.store(0, LINE, 3)
    assert harness.fabric.line_info(LINE).ex_owner == 0


def test_fetch_sources_and_latency_ordering():
    """Fetch latency respects the source hierarchy: L1 < L2 < L3 < memory."""
    harness = EngineHarness(n_cpus=1)
    lat = harness.params.latencies
    outcome_mem = harness.fabric.try_fetch(0, LINE, False)
    assert outcome_mem.source == "memory"
    # Second access: L1 hit.
    outcome_l1 = harness.fabric.try_fetch(0, LINE, False)
    assert outcome_l1.source == "l1"
    assert outcome_l1.latency == lat.l1_hit
    assert outcome_mem.latency > outcome_l1.latency


def test_l3_hit_after_release():
    harness = EngineHarness(n_cpus=2)
    harness.load(0, LINE)
    # Drop CPU0's private copies; the chip L3 still holds the line.
    harness.fabric.release_line(0, LINE)
    # Let the interconnect transfer window pass before refetching.
    harness.clock[0] = harness.fabric.line_info(LINE).busy_until
    outcome = harness.fabric.try_fetch(0, LINE, False)
    assert outcome.source == "l3"
    assert outcome.latency == harness.params.latencies.l3_hit


def test_busy_line_cannot_bounce_instantly(duo):
    """Per-line transfer serialisation: a just-transferred line is busy."""
    duo.store(0, LINE, 1)       # CPU0 takes the line (memory fetch)
    # Freeze the clock and have CPU1 request it: the first attempt pays
    # the XI/intervention, then the line is busy for a while.
    engine = duo.engine(1)
    outcome = duo.fabric.try_fetch(1, LINE, True)
    if not outcome.done:
        # Either rejected or busy; both are back-off outcomes.
        assert outcome.latency > 0
    else:
        second = duo.fabric.try_fetch(0, LINE, True)
        assert not second.done
        assert second.source == "busy"


def test_probe_latency_does_not_mutate(duo):
    duo.store(0, LINE, 1)
    before = duo.fabric.line_info(LINE).ex_owner
    probe = duo.fabric.probe_latency(1, LINE, True)
    assert probe > duo.params.latencies.l2_hit
    assert duo.fabric.line_info(LINE).ex_owner == before
    assert state_of(duo, 1, LINE) is None


def test_topology_distance_classification():
    params = small_params(n_cpus=1)
    topo = params.topology
    assert topo.distance(0, 0) == "self"
    assert topo.distance(0, 1) == "chip"
    same_mcm_other_chip = topo.cores_per_chip
    assert topo.distance(0, same_mcm_other_chip) == "mcm"
    if topo.mcms > 1:
        assert topo.distance(0, topo.cores_per_mcm) == "remote"


def test_register_out_of_order_rejected():
    from repro.core.engine import TxEngine
    from repro.errors import ProtocolError
    from repro.mem.fabric import CoherenceFabric
    from repro.mem.memory import MainMemory

    params = small_params(n_cpus=2)
    fabric = CoherenceFabric(params)
    memory = MainMemory()
    TxEngine(0, params, fabric, memory)
    with pytest.raises(ProtocolError):
        TxEngine(0, params, fabric, memory)  # duplicate id
