"""Tests for the ASCII figure renderer."""

import pytest

from repro.bench.figures import SweepPoint
from repro.bench.report import (
    render_chart,
    render_table,
    series_from_points,
    speedup_summary,
)
from repro.errors import ConfigurationError


POINTS = [
    SweepPoint("lock", 2, 10.0, 0.0),
    SweepPoint("lock", 8, 12.0, 0.0),
    SweepPoint("tx", 2, 11.0, 0.0),
    SweepPoint("tx", 8, 44.0, 0.1),
]


def test_series_from_points():
    series = series_from_points(POINTS)
    assert series == {"lock": {2: 10.0, 8: 12.0}, "tx": {2: 11.0, 8: 44.0}}


def test_render_table_contains_all_values():
    table = render_table(series_from_points(POINTS))
    assert "lock" in table and "tx" in table
    assert "44.0" in table and "10.0" in table
    assert table.splitlines()[1].startswith(f"{2:>6}")


def test_render_table_handles_missing_points():
    series = {"a": {2: 1.0, 8: 2.0}, "b": {2: 3.0}}
    table = render_table(series)
    assert len(table.splitlines()) == 3  # header + two CPU rows


def test_render_chart_shape_and_legend():
    chart = render_chart(series_from_points(POINTS), width=32, height=8,
                         title="demo")
    lines = chart.splitlines()
    assert lines[0] == "demo"
    assert len([l for l in lines if l.startswith("|")]) == 8
    assert "o=lock" in lines[-1] and "x=tx" in lines[-1]
    # The higher tx point must sit above the lock point: find rows.
    body = [l for l in lines if l.startswith("|")]
    first_x = min(i for i, l in enumerate(body) if "x" in l)
    last_o = max(i for i, l in enumerate(body) if "o" in l)
    assert first_x <= last_o


def test_render_chart_rejects_empty():
    with pytest.raises(ConfigurationError):
        render_chart({})


def test_speedup_summary():
    series = series_from_points(POINTS)
    speedups = dict(
        ((name, n), s) for name, n, s in speedup_summary(series, "lock")
    )
    assert speedups[("tx", 2)] == pytest.approx(1.1)
    assert speedups[("tx", 8)] == pytest.approx(44.0 / 12.0)


def test_speedup_summary_unknown_baseline():
    with pytest.raises(ConfigurationError):
        speedup_summary(series_from_points(POINTS), "nope")


def test_chart_with_single_point_degenerate_ranges():
    chart = render_chart({"one": {4: 5.0}})
    assert "o=one" in chart
