"""Property-based coherence-protocol invariants.

After *any* interleaved sequence of loads, stores, adds, transactions and
aborts on several CPUs, the fabric must satisfy the MESI-variant
invariants of section III.A:

* at most one exclusive owner per line, and never simultaneously with
  read-only owners (the exclusive owner aside);
* private-cache inclusivity: a line in a CPU's L1 is also in its L2;
* the fabric ownership map agrees with the private directories;
* every CPU observes coherent data (reads equal a sequentially
  consistent interleaving's result — checked via the final memory image
  against a reference log of committed writes).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from conftest import EngineHarness

from repro.errors import TransactionAbortSignal
from repro.mem.line import Ownership

DATA = 0x100000
N_LINES = 6


def check_invariants(harness: EngineHarness) -> None:
    for index in range(N_LINES + 2):
        line = DATA + index * 256
        info = harness.fabric.line_info(line)
        # Exclusive ownership excludes everything else.
        if info.ex_owner >= 0:
            assert info.ex_owner not in info.ro_owners
            assert not (info.ro_owners - {info.ex_owner})
        for cpu, engine in enumerate(harness.engines):
            l1_entry = engine.l1.directory.lookup(line)
            l2_entry = engine.l2.directory.lookup(line)
            # Inclusivity: L1 presence implies L2 presence.
            if l1_entry is not None:
                assert l2_entry is not None, (
                    f"line 0x{line:x} in cpu{cpu} L1 but not L2"
                )
            # Directory state agrees with the fabric ownership map.
            if l2_entry is not None and l2_entry.state is Ownership.EXCLUSIVE:
                assert info.ex_owner == cpu
            if l2_entry is not None:
                assert cpu in info.owners()


OPS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),               # cpu
        st.sampled_from(["load", "store", "add", "tbegin", "tend",
                         "abort"]),
        st.integers(min_value=0, max_value=N_LINES - 1),     # line index
        st.integers(min_value=0, max_value=99),              # value
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=30, deadline=None)
@given(ops=OPS)
def test_coherence_invariants_hold_under_any_interleaving(ops):
    harness = EngineHarness(n_cpus=3)

    def do(cpu, op, index, value):
        addr = DATA + index * 256
        engine = harness.engines[cpu]
        try:
            if op == "load":
                harness.load(cpu, addr)
            elif op == "store":
                harness.store(cpu, addr, value)
            elif op == "add":
                harness.add(cpu, addr, value)
            elif op == "tbegin":
                if engine.tx.depth < engine.tx.max_nesting_depth:
                    harness.tbegin(cpu)
            elif op == "tend":
                if engine.tx.active:
                    harness.tend(cpu)
            elif op == "abort":
                if engine.tx.active:
                    engine.tx_abort(256)
        except TransactionAbortSignal:
            harness.process_abort(cpu)

    for cpu, op, index, value in ops:
        do(cpu, op, index, value)
        check_invariants(harness)

    # Wind down any open transactions and re-check.
    for cpu, engine in enumerate(harness.engines):
        while engine.tx.active:
            try:
                harness.tend(cpu)
            except TransactionAbortSignal:
                harness.process_abort(cpu)
    check_invariants(harness)


@settings(max_examples=20, deadline=None)
@given(ops=OPS)
def test_committed_adds_are_never_lost(ops):
    """Counting semantics: the final memory value of each line equals
    the number of *committed* adds (adds inside aborted transactions do
    not count; TABORT discards, TEND commits)."""
    harness = EngineHarness(n_cpus=3)
    committed = [0] * N_LINES
    pending = [dict() for _ in range(3)]  # per-cpu in-tx add counts

    for cpu, op, index, value in ops:
        addr = DATA + index * 256
        engine = harness.engines[cpu]
        try:
            if op == "add":
                harness.add(cpu, addr, 1)
                if engine.tx.active:
                    pending[cpu][index] = pending[cpu].get(index, 0) + 1
                else:
                    committed[index] += 1
            elif op == "tbegin":
                if not engine.tx.active:
                    harness.tbegin(cpu)
                    pending[cpu] = {}
            elif op == "tend":
                if engine.tx.active and engine.tx.depth == 1:
                    harness.tend(cpu)
                    for i, n in pending[cpu].items():
                        committed[i] += n
                    pending[cpu] = {}
            elif op == "abort":
                if engine.tx.active:
                    engine.tx_abort(256)
        except TransactionAbortSignal:
            harness.process_abort(cpu)
            pending[cpu] = {}

    for cpu, engine in enumerate(harness.engines):
        if engine.tx.active:
            try:
                while engine.tx.depth:
                    harness.tend(cpu)
                for i, n in pending[cpu].items():
                    committed[i] += n
            except TransactionAbortSignal:
                harness.process_abort(cpu)
    harness.quiesce()

    for index in range(N_LINES):
        assert harness.memory.read_int(DATA + index * 256, 8) == committed[index]