"""Configuration validation tests."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.params import (
    CacheGeometry,
    InstructionCosts,
    L1_GEOMETRY,
    L2_GEOMETRY,
    Latencies,
    MachineParams,
    Topology,
    TxLimits,
    ZEC12,
)


def test_zec12_cache_sizes_match_paper():
    """96KB 6-way L1 (64 rows), 1MB 8-way L2 (512 rows), 256B lines."""
    assert L1_GEOMETRY.capacity == 96 * 1024
    assert L1_GEOMETRY.ways == 6 and L1_GEOMETRY.rows == 64
    assert L2_GEOMETRY.capacity == 1024 * 1024
    assert L2_GEOMETRY.ways == 8 and L2_GEOMETRY.rows == 512
    assert ZEC12.line_size == 256


def test_zec12_tx_limits_match_paper():
    assert ZEC12.tx.max_nesting_depth == 16
    assert ZEC12.tx.store_cache_entries == 64
    assert ZEC12.tx.store_cache_entry_bytes == 128
    assert ZEC12.tx.constrained_max_instructions == 32
    assert ZEC12.tx.constrained_itext_bytes == 256
    assert ZEC12.tx.constrained_max_octowords == 4


def test_latency_ordering_is_physical():
    lat = ZEC12.latencies
    assert lat.l1_hit < lat.l2_hit < lat.l3_hit
    assert lat.l3_hit < lat.on_chip_intervention < lat.same_mcm
    assert lat.same_mcm < lat.cross_mcm < lat.memory


def test_latencies_must_be_positive():
    with pytest.raises(ConfigurationError):
        Latencies(l1_hit=0)


def test_costs_must_be_non_negative():
    with pytest.raises(ConfigurationError):
        InstructionCosts(base=-1)


def test_topology_boundaries():
    topo = Topology(cores_per_chip=6, chips_per_mcm=4, mcms=5)
    assert topo.cores_per_mcm == 24
    assert topo.total_cores == 120
    assert topo.chip_of(5) == 0 and topo.chip_of(6) == 1
    assert topo.mcm_of(23) == 0 and topo.mcm_of(24) == 1


def test_topology_validation():
    with pytest.raises(ConfigurationError):
        Topology(cores_per_chip=0)


def test_with_cpus_keeps_boundaries():
    """Growing the topology adds MCMs; chip/MCM boundaries stay at 6/24,
    so the Figure 5(a) step positions are preserved."""
    grown = ZEC12.with_cpus(ZEC12.topology.total_cores * 2)
    assert grown.topology.cores_per_chip == ZEC12.topology.cores_per_chip
    assert grown.topology.cores_per_mcm == ZEC12.topology.cores_per_mcm
    assert grown.topology.total_cores >= ZEC12.topology.total_cores * 2


def test_with_cpus_noop_when_large_enough():
    assert ZEC12.with_cpus(2) is ZEC12


def test_with_cpus_rejects_zero():
    with pytest.raises(ConfigurationError):
        ZEC12.with_cpus(0)


def test_line_size_mismatch_rejected():
    with pytest.raises(ConfigurationError):
        dataclasses.replace(
            ZEC12, l1=CacheGeometry(ways=6, rows=64, line_size=128)
        )


def test_tx_limits_validation():
    with pytest.raises(ConfigurationError):
        TxLimits(max_nesting_depth=0)
    with pytest.raises(ConfigurationError):
        TxLimits(xi_reject_threshold=0)
    with pytest.raises(ConfigurationError):
        TxLimits(store_cache_entry_bytes=4)


def test_params_hashable_for_baseline_cache():
    assert hash(ZEC12) == hash(MachineParams())
