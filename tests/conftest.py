"""Shared test fixtures and harnesses."""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import pytest

from repro.core.abort import TransactionAbort
from repro.core.engine import FetchRetry, TxEngine
from repro.errors import TransactionAbortSignal
from repro.mem.fabric import CoherenceFabric
from repro.mem.memory import MainMemory
from repro.mem.paging import PageTable
from repro.params import MachineParams, Topology, ZEC12


def small_params(
    n_cpus: int = 1,
    lru_extension: bool = True,
    speculation: bool = False,
    **overrides,
) -> MachineParams:
    """Machine parameters sized for unit tests.

    Speculative prefetch defaults *off* so footprints are exactly the
    architected accesses (tests that want it enable it explicitly).
    """
    cores = max(2, n_cpus)
    return dataclasses.replace(
        ZEC12,
        topology=Topology(cores_per_chip=min(cores, 6),
                          chips_per_mcm=2,
                          mcms=max(1, -(-n_cpus // (min(cores, 6) * 2)))),
        lru_extension=lru_extension,
        speculation=speculation,
        **overrides,
    )


class EngineHarness:
    """Drives TxEngines directly (no ISA), with retry loops inlined.

    A shared local clock stands in for the scheduler so the fabric's
    per-line transfer serialisation works. Aborts are captured, processed
    through the millicode path, and recorded.
    """

    def __init__(self, params: Optional[MachineParams] = None,
                 n_cpus: int = 1) -> None:
        self.params = params if params is not None else small_params(n_cpus)
        self.memory = MainMemory()
        self.page_table = PageTable()
        self.fabric = CoherenceFabric(self.params)
        self.clock = [0]
        self.fabric.clock = lambda: self.clock[0]
        self.engines: List[TxEngine] = [
            TxEngine(i, self.params, self.fabric, self.memory, self.page_table)
            for i in range(n_cpus)
        ]
        self.aborts: List[TransactionAbort] = []

    def engine(self, cpu: int = 0) -> TxEngine:
        return self.engines[cpu]

    # -- retried operations --------------------------------------------------

    def _retry(self, fn):
        while True:
            try:
                return fn()
            except FetchRetry as retry:
                self.clock[0] += retry.delay

    def load(self, cpu: int, addr: int, length: int = 8) -> int:
        value, latency = self._retry(
            lambda: self.engines[cpu].load(addr, length)
        )
        self.clock[0] += latency
        return value

    def store(self, cpu: int, addr: int, value: int, length: int = 8) -> None:
        latency = self._retry(
            lambda: self.engines[cpu].store(addr, value, length)
        )
        self.clock[0] += latency

    def add(self, cpu: int, addr: int, increment: int, length: int = 8) -> int:
        value, latency = self._retry(
            lambda: self.engines[cpu].add_to_storage(addr, increment, length)
        )
        self.clock[0] += latency
        return value

    def cas(self, cpu: int, addr: int, expected: int, new: int) -> bool:
        swapped, _observed, latency = self._retry(
            lambda: self.engines[cpu].compare_and_swap(addr, expected, new)
        )
        self.clock[0] += latency
        return swapped

    def ntstg(self, cpu: int, addr: int, value: int) -> None:
        latency = self._retry(lambda: self.engines[cpu].ntstg(addr, value))
        self.clock[0] += latency

    # -- transaction control --------------------------------------------------

    def tbegin(self, cpu: int = 0, controls=None, constrained: bool = False,
               ia: int = 0x1000) -> None:
        self.clock[0] += self.engines[cpu].tx_begin(
            controls, constrained=constrained, ia=ia
        )

    def tend(self, cpu: int = 0) -> int:
        # tx_end can raise FetchRetry in stm fallback mode: the hybrid
        # publication step fetches orec/clock lines at the outermost TEND.
        latency, depth = self._retry(lambda: self.engines[cpu].tx_end(0))
        self.clock[0] += latency
        return depth

    def process_abort(self, cpu: int = 0, grs=None) -> TransactionAbort:
        abort, plan, latency = self.engines[cpu].process_abort(grs)
        self.clock[0] += latency + plan.delay_cycles
        self.aborts.append(abort)
        return abort

    def expect_abort(self, fn, cpu: int = 0) -> TransactionAbort:
        """Run ``fn`` expecting a transaction abort; processes and returns it."""
        with pytest.raises(TransactionAbortSignal):
            fn()
        return self.process_abort(cpu)

    def quiesce(self) -> None:
        for engine in self.engines:
            engine.quiesce()


@pytest.fixture
def harness() -> EngineHarness:
    return EngineHarness(n_cpus=1)


@pytest.fixture
def duo() -> EngineHarness:
    return EngineHarness(n_cpus=2)


@pytest.fixture
def quad() -> EngineHarness:
    return EngineHarness(n_cpus=4)
