"""Transaction-engine semantics: atomicity, isolation, nesting, NTSTG."""

import pytest

from conftest import EngineHarness

from repro.core.abort import AbortCode
from repro.core.txstate import TbeginControls
from repro.errors import MachineStateError, TransactionAbortSignal

A = 0x10000
B = 0x20000
C = 0x30000


class TestBasicCommit:
    def test_committed_stores_reach_memory(self, harness):
        harness.tbegin()
        harness.store(0, A, 1)
        harness.store(0, B, 2)
        assert harness.tend() == 0
        harness.quiesce()
        assert harness.memory.read_int(A, 8) == 1
        assert harness.memory.read_int(B, 8) == 2

    def test_own_loads_see_own_tx_stores(self, harness):
        harness.store(0, A, 5)
        harness.tbegin()
        harness.store(0, A, 6)
        assert harness.load(0, A) == 6
        harness.tend()

    def test_commit_clears_tx_state(self, harness):
        engine = harness.engine()
        harness.tbegin()
        harness.store(0, A, 1)
        harness.load(0, B)
        harness.tend()
        assert not engine.tx.active
        assert engine.tx.read_set == set()
        assert engine.store_cache.tx_entry_count() == 0
        assert engine.stats_tx_committed == 1


class TestAbort:
    def test_tabort_discards_stores(self, harness):
        harness.store(0, A, 42)
        harness.quiesce()
        harness.tbegin()
        harness.store(0, A, 99)
        with pytest.raises(TransactionAbortSignal):
            harness.engine().tx_abort(256)
        abort = harness.process_abort()
        assert abort.code == 256
        assert abort.condition_code == 2  # even code: transient
        harness.quiesce()
        assert harness.memory.read_int(A, 8) == 42

    def test_tabort_odd_code_is_permanent(self, harness):
        harness.tbegin()
        with pytest.raises(TransactionAbortSignal):
            harness.engine().tx_abort(257)
        assert harness.process_abort().condition_code == 3

    def test_tabort_small_code_biased_to_256(self, harness):
        harness.tbegin()
        with pytest.raises(TransactionAbortSignal):
            harness.engine().tx_abort(4)
        assert harness.process_abort().code == 256 + 4

    def test_tabort_outside_transaction_rejected(self, harness):
        with pytest.raises(MachineStateError):
            harness.engine().tx_abort(256)

    def test_abort_restores_nothing_from_read_set(self, harness):
        """Loads have no memory side effects to roll back."""
        harness.store(0, A, 7)
        harness.quiesce()
        harness.tbegin()
        assert harness.load(0, A) == 7
        with pytest.raises(TransactionAbortSignal):
            harness.engine().tx_abort(256)
        harness.process_abort()
        assert harness.load(0, A) == 7

    def test_stats_count_aborts(self, harness):
        harness.tbegin()
        with pytest.raises(TransactionAbortSignal):
            harness.engine().tx_abort(256)
        harness.process_abort()
        assert harness.engine().stats_tx_aborted == 1


class TestNesting:
    def test_nested_commit_at_outermost_only(self, harness):
        engine = harness.engine()
        harness.tbegin()
        harness.tbegin()
        harness.store(0, A, 1)
        assert harness.tend() == 1        # inner TEND: still transactional
        assert engine.tx.active
        harness.quiesce()
        assert harness.memory.read_int(A, 8) == 0  # not yet visible
        assert harness.tend() == 0        # outermost TEND commits
        harness.quiesce()
        assert harness.memory.read_int(A, 8) == 1

    def test_nesting_depth_tracking(self, harness):
        engine = harness.engine()
        assert engine.nesting_depth()[1] == 0
        harness.tbegin()
        harness.tbegin()
        harness.tbegin()
        assert engine.nesting_depth()[1] == 3
        harness.tend()
        assert engine.nesting_depth()[1] == 2

    def test_flattened_nesting_abort_unwinds_everything(self, harness):
        engine = harness.engine()
        harness.tbegin()
        harness.tbegin()
        harness.store(0, A, 1)
        with pytest.raises(TransactionAbortSignal):
            engine.tx_abort(256)
        harness.process_abort()
        assert engine.tx.depth == 0
        harness.quiesce()
        assert harness.memory.read_int(A, 8) == 0

    def test_max_nesting_depth_aborts_with_code_13(self, harness):
        engine = harness.engine()
        for _ in range(engine.tx.max_nesting_depth):
            harness.tbegin()
        with pytest.raises(TransactionAbortSignal):
            engine.tx_begin(None, constrained=False, ia=0)
        abort = harness.process_abort()
        assert abort.code == AbortCode.NESTING_DEPTH_EXCEEDED
        assert abort.condition_code == 3

    def test_effective_controls_and_of_nest(self, harness):
        engine = harness.engine()
        harness.tbegin(controls=TbeginControls(allow_fpr_modification=True))
        assert engine.tx.effective_fpr_allowed
        harness.tbegin(controls=TbeginControls(allow_fpr_modification=False))
        assert not engine.tx.effective_fpr_allowed
        harness.tend()
        assert engine.tx.effective_fpr_allowed

    def test_effective_pifc_is_maximum(self, harness):
        engine = harness.engine()
        harness.tbegin(controls=TbeginControls(pifc=1))
        harness.tbegin(controls=TbeginControls(pifc=0))
        assert engine.tx.effective_pifc == 1
        harness.tbegin(controls=TbeginControls(pifc=2))
        assert engine.tx.effective_pifc == 2

    def test_tbeginc_inside_tbegin_opens_normal_level(self, harness):
        """A TBEGINC within a non-constrained transaction is treated as
        opening a new non-constrained nesting level."""
        engine = harness.engine()
        harness.tbegin()
        harness.tbegin(constrained=True)
        assert engine.tx.depth == 2
        assert not engine.tx.constrained


class TestNtstg:
    def test_ntstg_isolated_but_survives_abort(self, harness):
        harness.tbegin()
        harness.ntstg(0, A, 0xDEAD)
        harness.store(0, B, 0xBEEF)
        harness.quiesce()
        assert harness.memory.read_int(A, 8) == 0  # still isolated
        with pytest.raises(TransactionAbortSignal):
            harness.engine().tx_abort(256)
        harness.process_abort()
        harness.quiesce()
        assert harness.memory.read_int(A, 8) == 0xDEAD  # survived
        assert harness.memory.read_int(B, 8) == 0       # discarded

    def test_ntstg_committed_normally_on_tend(self, harness):
        harness.tbegin()
        harness.ntstg(0, A, 0x1234)
        harness.tend()
        harness.quiesce()
        assert harness.memory.read_int(A, 8) == 0x1234

    def test_ntstg_requires_doubleword_alignment(self, harness):
        from repro.errors import ProgramInterruptionSignal

        with pytest.raises(ProgramInterruptionSignal):
            harness.engine().ntstg(A + 3, 1)


class TestCompareAndSwap:
    def test_cas_success(self, harness):
        harness.store(0, A, 10)
        assert harness.cas(0, A, 10, 20)
        assert harness.load(0, A) == 20

    def test_cas_failure_reports_observed(self, harness):
        harness.store(0, A, 10)
        swapped, observed, _lat = harness._retry(
            lambda: harness.engine().compare_and_swap(A, 99, 20)
        )
        assert not swapped
        assert observed == 10
        assert harness.load(0, A) == 10


class TestAddToStorage:
    def test_add_returns_new_value(self, harness):
        harness.store(0, A, 5)
        assert harness.add(0, A, 3) == 8
        assert harness.load(0, A) == 8

    def test_add_negative_increment(self, harness):
        harness.store(0, A, 5)
        assert harness.add(0, A, -7, 8) == (5 - 7) & ((1 << 64) - 1)


class TestTendOutsideTransaction:
    def test_tend_outside_returns_depth_zero(self, harness):
        latency, depth = harness.engine().tx_end(0)
        assert depth == 0
        assert latency > 0
