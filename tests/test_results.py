"""Tests for throughput computation and normalisation."""

import pytest

from repro.errors import SimulationError
from repro.sim.results import CpuResult, SimResult


def make_result(intervals_per_cpu):
    cpus = [
        CpuResult(cpu_id=i, intervals=list(intervals))
        for i, intervals in enumerate(intervals_per_cpu)
    ]
    return SimResult(cycles=1000, cpus=cpus)


def test_throughput_is_cpus_over_mean_interval():
    """"the quotient of the number of CPUs divided by the average time
    per update"."""
    result = make_result([[100, 100], [100, 100]])
    assert result.throughput == pytest.approx(2 / 100)


def test_mean_pools_all_cpus():
    result = make_result([[50], [150]])
    assert result.mean_update_cycles == 100


def test_normalisation_maps_baseline_to_100():
    baseline = make_result([[100], [100]])
    result = make_result([[100], [100]])
    assert result.normalized_throughput(baseline.throughput) == pytest.approx(100)


def test_normalisation_scales_linearly():
    baseline = make_result([[100], [100]])          # thr = 0.02
    faster = make_result([[50], [50]])              # thr = 0.04
    assert faster.normalized_throughput(baseline.throughput) == pytest.approx(200)


def test_no_intervals_raises():
    result = make_result([[]])
    with pytest.raises(SimulationError):
        _ = result.throughput


def test_bad_baseline_rejected():
    result = make_result([[100]])
    with pytest.raises(SimulationError):
        result.normalized_throughput(0)


def test_abort_rate_aggregation():
    cpus = [
        CpuResult(cpu_id=0, tx_committed=8, tx_aborted=2),
        CpuResult(cpu_id=1, tx_committed=6, tx_aborted=4),
    ]
    result = SimResult(cycles=1, cpus=cpus)
    assert result.total_committed == 14
    assert result.total_aborted == 6
    assert result.abort_rate == pytest.approx(6 / 20)
    assert cpus[0].abort_rate == pytest.approx(0.2)


def test_abort_rate_zero_when_no_transactions():
    result = SimResult(cycles=1, cpus=[CpuResult(cpu_id=0)])
    assert result.abort_rate == 0.0
