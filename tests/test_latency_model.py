"""Latency-model tests: fetch cost depends on physical distance.

The chip/MCM topology drives the Figure 5(a) step functions; these tests
pin the ordering L1 < L2 < on-chip intervention < same-MCM < cross-MCM
for actual fetches, not just the parameter table.
"""

import pytest

from conftest import EngineHarness, small_params

from repro.params import MachineParams, Topology, ZEC12


def harness_with_topology() -> EngineHarness:
    """2 cores/chip, 2 chips/MCM, 2 MCMs: CPU pairs (0,1) same chip,
    (0,2) same MCM, (0,4) cross MCM."""
    import dataclasses

    params = dataclasses.replace(
        ZEC12,
        topology=Topology(cores_per_chip=2, chips_per_mcm=2, mcms=2),
        speculation=False,
    )
    return EngineHarness(params=params, n_cpus=8)


def fetch_latency(harness, cpu, line, exclusive=True):
    """Total latency of a fresh fetch including the wait phase."""
    from repro.core.engine import FetchRetry

    total = 0
    while True:
        try:
            outcome_latency = harness.engines[cpu]._fetch(line, exclusive)[0]
            return total + outcome_latency
        except FetchRetry as retry:
            total += retry.delay
            harness.clock[0] += retry.delay


LINE = 0x40000


def test_memory_fetch_is_slowest():
    harness = harness_with_topology()
    lat = harness.params.latencies
    first = fetch_latency(harness, 0, LINE)
    assert first >= lat.memory - lat.l1_hit


def test_l1_hit_after_fetch():
    harness = harness_with_topology()
    fetch_latency(harness, 0, LINE)
    again = fetch_latency(harness, 0, LINE)
    assert again == harness.params.latencies.l1_hit


@pytest.mark.parametrize("owner,expected_tier", [
    (1, "on_chip_intervention"),   # same chip as CPU 0
    (2, "same_mcm"),               # other chip, same MCM
    (4, "cross_mcm"),              # other MCM
])
def test_intervention_latency_by_distance(owner, expected_tier):
    harness = harness_with_topology()
    lat = harness.params.latencies
    # Give `owner` the line exclusively, then time CPU 0's fetch.
    harness.store(owner, LINE, 1)
    harness.clock[0] += 10_000  # let the transfer window pass
    measured = fetch_latency(harness, 0, LINE)
    tier = getattr(lat, expected_tier)
    assert measured >= tier, (
        f"fetch from cpu{owner} cost {measured}, expected >= {tier}"
    )
    # And it is cheaper than the next tier up (ordering holds).
    ceiling = {"on_chip_intervention": lat.same_mcm,
               "same_mcm": lat.cross_mcm,
               "cross_mcm": lat.memory + lat.xi_round_trip * 4}[expected_tier]
    assert measured <= ceiling + lat.xi_round_trip + lat.l1_hit


def test_nearer_copies_win():
    """With the line held by both a same-chip and a cross-MCM CPU
    (read-only), the fetch sources from the nearest copy."""
    harness = harness_with_topology()
    harness.load(1, LINE)   # same chip as CPU 0
    harness.load(4, LINE)   # other MCM
    harness.clock[0] += 10_000
    measured = fetch_latency(harness, 0, LINE, exclusive=False)
    assert measured <= harness.params.latencies.on_chip_intervention + \
        harness.params.latencies.l1_hit


def test_l3_cheaper_than_intervention_tiers():
    harness = harness_with_topology()
    lat = harness.params.latencies
    harness.load(0, LINE)
    harness.fabric.release_line(0, LINE)   # stays in the chip L3
    harness.clock[0] += 10_000
    measured = fetch_latency(harness, 0, LINE, exclusive=False)
    assert measured <= lat.l3_hit + lat.l1_hit
    assert measured < lat.same_mcm
